//! The concurrent, sharded PH-tree with a lock-free read path.

use crate::epoch::ShardMap;
use crate::error::ShardError;
use crate::lockstat::DataMutex;
use crate::merge::merge_nearest;
use crate::metrics::{PoolMetrics, RebalanceMetrics, ShardMetrics, SwapMetrics};
use crate::pool::WorkerPool;
use crate::snapshot::{Published, Snapshot, WriteClock, SNAPSHOT_SPIN};
use crate::swap::Swap;
use phmetrics::Registry;
use phtree::PhTree;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A boxed fan-out task as submitted to the worker pool.
type Task<R> = Box<dyn FnOnce() -> R + Send>;
/// A window-query hit: key plus cloned value.
type Entry<V, const K: usize> = ([u64; K], V);
/// A kNN hit: key, cloned value, distance.
type Scored<V, const K: usize> = ([u64; K], V, f64);

/// Per-instance statistics (see [`ShardedTree::stats`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStats {
    /// Number of shards.
    pub shards: usize,
    /// Worker threads in the fan-out pool (0 = inline).
    pub threads: usize,
    /// Total entries across all shards.
    pub entries: usize,
    /// Entry count per shard, aligned with [`ShardStats::live_slots`]
    /// (routing balance diagnostic).
    pub per_shard: Vec<usize>,
    /// Live slot ids in Z-order of their regions (uniform maps:
    /// `0..shards`).
    pub live_slots: Vec<usize>,
    /// Routing epoch: 0 until the first committed split.
    pub epoch: u64,
    /// Shards visited by window queries since construction.
    pub shards_scanned: u64,
    /// Shards skipped by prefix-mask pruning since construction.
    pub shards_pruned: u64,
}

impl ShardStats {
    /// Routing skew: the fullest shard's occupancy over the mean
    /// occupancy. `1.0` is perfect balance, `shards as f64` means every
    /// entry landed on one shard (the Z-prefix router's worst case:
    /// keys clustered under one top-bit prefix). `1.0` for an empty
    /// tree.
    pub fn skew(&self) -> f64 {
        if self.entries == 0 || self.per_shard.is_empty() {
            return 1.0;
        }
        let max = self.per_shard.iter().copied().max().unwrap_or(0);
        let mean = self.entries as f64 / self.per_shard.len() as f64;
        max as f64 / mean
    }

    /// The live slot with the most entries, `(slot, entries)`. `None`
    /// when empty.
    pub fn hottest(&self) -> Option<(usize, usize)> {
        self.live_slots
            .iter()
            .copied()
            .zip(self.per_shard.iter().copied())
            .filter(|&(_, n)| n > 0)
            .max_by_key(|&(_, n)| n)
    }
}

/// Outcome of a committed hot-shard split (see
/// [`ShardedTree::split_shard`] / `DurableSharded::split_shard`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitReport {
    /// The retired parent slot.
    pub src: usize,
    /// Freshly allocated child slots, in Z-order of their regions.
    pub children: Vec<usize>,
    /// Entries moved from the parent into the children.
    pub migrated: usize,
    /// Backlogged writes replayed onto children at commit (always 0
    /// for the in-memory tree, whose split is atomic under the shard
    /// lock).
    pub backlog_drained: usize,
    /// Routing epoch after the split.
    pub epoch: u64,
}

/// One shard's storage cell. Writers mutate the working tree under
/// `writer` and then publish an O(1) structural clone through
/// `published`; readers only ever touch `published` (lock-free).
///
/// `retired` flips when a committed split moves the slot's data
/// elsewhere. The flip is ordered **before** the successor state
/// install (both inside the split's write-clock bracket): a lock-free
/// reader loads a published root and *then* checks `retired`, so a
/// false reading proves no split has moved data off this cell — the
/// loaded root holds every acknowledged write for the cell's region. A
/// retired cell keeps its last published root, so snapshots pinned
/// before the split stay readable.
struct MemCell<V, const K: usize> {
    retired: AtomicBool,
    writer: DataMutex<PhTree<V, K>>,
    published: Swap<Published<V, K>>,
}

impl<V, const K: usize> MemCell<V, K> {
    fn fresh(tree: PhTree<V, K>) -> Arc<Self>
    where
        V: Clone,
    {
        Arc::new(MemCell {
            retired: AtomicBool::new(false),
            published: Swap::new(Published::now(tree.clone())),
            writer: DataMutex::new(tree),
        })
    }

    /// Publishes `tree` as the cell's current version. Must be called
    /// under the cell's writer lock and inside a write-clock bracket.
    fn publish(&self, tree: PhTree<V, K>, metrics: &SwapMetrics) {
        self.published.store(Published::now(tree));
        metrics.root_swaps.inc();
    }
}

/// An immutable routing snapshot: the map plus the slot-indexed cell
/// table it addresses. Swapped wholesale (behind `Arc`) on every
/// committed split, so readers see map and cells move together.
struct MemInner<V, const K: usize> {
    map: Arc<ShardMap<K>>,
    cells: Vec<Option<Arc<MemCell<V, K>>>>,
}

impl<V, const K: usize> MemInner<V, K> {
    fn cell(&self, slot: usize) -> &Arc<MemCell<V, K>> {
        self.cells[slot]
            .as_ref()
            .expect("routing map addressed a missing cell")
    }
}

/// A key-space-partitioned concurrent PH-tree.
///
/// Keys are routed to shards by a prefix of their Z-order interleaving
/// ([`ShardMap`]), so each shard owns an axis-aligned hypercube prefix
/// region. Writes lock exactly one shard; **reads take no locks at
/// all**: every write publishes an immutable tree version (an O(1)
/// structural clone — versions share nodes copy-on-write), and
/// `get`/`query`/`knn` serve from published versions via an atomic
/// swap cell. Window queries prune non-intersecting shards with the
/// paper's `mL`/`mU` masks and fan the survivors out across a std-only
/// worker pool. See [`crate::Consistency`] for the guarantees:
/// single-key ops are linearizable, cross-shard reads are snapshot
/// reads over a consistent cut ([`ShardedTree::snapshot`]).
///
/// The routing topology is *versioned*: [`ShardedTree::split_shard`]
/// deepens one hot shard's prefix into `2^bits` children without
/// touching any other shard, installing a new routing epoch. Readers
/// and writers holding the previous epoch's snapshot detect the
/// retired cell and re-route — no operation ever lands on moved data.
///
/// All methods take `&self`; the structure is `Send + Sync` and meant
/// to be shared (e.g. in an `Arc`) across server threads.
pub struct ShardedTree<V, const K: usize> {
    state: Swap<MemInner<V, K>>,
    /// Global write counter pair for the snapshot consistent-cut
    /// protocol. `Arc` so pooled bulk-load tasks can bracket their
    /// publications.
    clock: Arc<WriteClock>,
    /// Serialises splits: at most one topology change in flight, so a
    /// split sees a stable map between planning and install.
    split_gate: Mutex<()>,
    pool: WorkerPool,
    scanned: AtomicU64,
    pruned: AtomicU64,
    metrics: ShardMetrics,
    swap_metrics: SwapMetrics,
    reb_metrics: RebalanceMetrics,
}

impl<V: Clone, const K: usize> ShardedTree<V, K> {
    /// A sharded tree with `shards` shards (power of two) and a worker
    /// pool sized to the host: `available_parallelism - 1` threads,
    /// capped at the shard count (0 on single-core hosts — inline
    /// execution, no thread overhead).
    pub fn new(shards: usize) -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::with_threads(shards, (cores - 1).min(shards))
    }

    /// A sharded tree with an explicit fan-out pool size. `threads ==
    /// 0` runs every fan-out inline on the calling thread.
    pub fn with_threads(shards: usize, threads: usize) -> Self {
        Self::build(
            shards,
            threads,
            ShardMetrics::disabled(),
            PoolMetrics::disabled(),
            RebalanceMetrics::disabled(),
            SwapMetrics::disabled(),
        )
    }

    /// A sharded tree whose operations record into `registry`: per-op
    /// counters and latency histograms, per-shard routing counters,
    /// query fan-out / kNN merge widths, rebalance transitions
    /// (`phshard_rebalance_*`, `phshard_routing_epoch`), root
    /// publications and snapshot lifecycle (`phshard_root_swaps_total`,
    /// `phshard_snapshot_live`, `phshard_root_age_ns`), and the
    /// fan-out pool's queue depth, busy time and panic count (see
    /// `phshard_*` in the crate's instrument catalogue). Trees built
    /// without a registry carry no-op handles — recording is then a
    /// branch on a null `Option`.
    pub fn with_metrics(shards: usize, threads: usize, registry: &Registry) -> Self {
        Self::build(
            shards,
            threads,
            ShardMetrics::new(registry, shards),
            PoolMetrics::from_registry(registry),
            RebalanceMetrics::new(registry),
            SwapMetrics::new(registry),
        )
    }

    fn build(
        shards: usize,
        threads: usize,
        metrics: ShardMetrics,
        pool_metrics: PoolMetrics,
        reb_metrics: RebalanceMetrics,
        swap_metrics: SwapMetrics,
    ) -> Self {
        let map = ShardMap::uniform(shards);
        let cells = (0..shards)
            .map(|_| Some(MemCell::fresh(PhTree::new())))
            .collect();
        ShardedTree {
            state: Swap::new(Arc::new(MemInner {
                map: Arc::new(map),
                cells,
            })),
            clock: Arc::new(WriteClock::new()),
            split_gate: Mutex::new(()),
            pool: WorkerPool::with_metrics(threads, pool_metrics),
            scanned: AtomicU64::new(0),
            pruned: AtomicU64::new(0),
            metrics,
            swap_metrics,
            reb_metrics,
        }
    }
}

impl<V, const K: usize> ShardedTree<V, K> {
    /// Loads the current routing state (lock-free).
    fn load_state(&self) -> Arc<MemInner<V, K>> {
        self.state.load()
    }

    /// The current routing snapshot (shard ids, shard boxes, query
    /// pruning). A split installed after this call does not change the
    /// returned map — re-call to observe the new epoch.
    pub fn router(&self) -> Arc<ShardMap<K>> {
        Arc::clone(&self.load_state().map)
    }

    /// The slot that currently owns `key`.
    pub fn shard_of(&self, key: &[u64; K]) -> usize {
        self.load_state().map.route(key)
    }

    /// Routes `key` to its current published version: the lock-free
    /// read primitive. Loads the routing state, the cell's published
    /// root, and then checks the cell wasn't retired by a split —
    /// `retired == false` *after* the root load proves the root holds
    /// every acknowledged write for the key (see [`MemCell`]). No lock
    /// is acquired anywhere on this path.
    fn published_for(&self, key: &[u64; K]) -> (usize, Arc<Published<V, K>>) {
        loop {
            let inner = self.load_state();
            let slot = inner.map.route(key);
            let cell = inner.cell(slot);
            let published = cell.published.load();
            if !cell.retired.load(Ordering::SeqCst) {
                return (slot, published);
            }
            // A split retired this cell; its successor state installs
            // within the same clock bracket — spin briefly and re-route.
            std::hint::spin_loop();
        }
    }

    /// Routes `key` and locks its live cell for writing, re-routing
    /// whenever the locked cell turns out to have been retired by a
    /// concurrent split commit. After `f` mutates the working tree, the
    /// new version is published (inside a write-clock bracket) while
    /// the writer lock is still held.
    fn with_cell_write<R>(&self, key: &[u64; K], f: impl FnOnce(usize, &mut PhTree<V, K>) -> R) -> R
    where
        V: Clone,
    {
        let mut f = Some(f);
        loop {
            let inner = self.load_state();
            let slot = inner.map.route(key);
            let cell = inner.cell(slot);
            let mut guard = cell.writer.lock();
            if cell.retired.load(Ordering::SeqCst) {
                continue; // split committed while we waited for the lock
            }
            let out = (f.take().expect("write retried after success"))(slot, &mut guard);
            self.clock
                .bracket(|| cell.publish(guard.clone(), &self.swap_metrics));
            return out;
        }
    }

    /// Inserts `key` → `value`; returns the previous value, if any.
    /// Locks only the owning shard (linearizable per key); readers are
    /// never blocked — they keep serving the previous published
    /// version until the new one is installed.
    pub fn insert(&self, key: [u64; K], value: V) -> Option<V>
    where
        V: Clone,
    {
        let t = self.metrics.insert.start();
        let out = self.with_cell_write(&key, |slot, tree| {
            self.metrics.add_shard_ops(slot, 1);
            tree.insert(key, value)
        });
        self.metrics.insert.finish(t);
        out
    }

    /// Removes `key`; returns its value, if present.
    pub fn remove(&self, key: &[u64; K]) -> Option<V>
    where
        V: Clone,
    {
        let t = self.metrics.remove.start();
        let out = self.with_cell_write(key, |slot, tree| {
            self.metrics.add_shard_ops(slot, 1);
            tree.remove(key)
        });
        self.metrics.remove.finish(t);
        out
    }

    /// Applies `f` to the value at `key` in the current published
    /// version — the zero-copy, zero-lock point read.
    pub fn get_with<R>(&self, key: &[u64; K], f: impl FnOnce(&V) -> R) -> Option<R> {
        let t = self.metrics.get.start();
        let (slot, published) = self.published_for(key);
        self.metrics.add_shard_ops(slot, 1);
        self.swap_metrics.note_root_age(&published.stamp);
        let out = published.tree.get(key).map(f);
        self.metrics.get.finish(t);
        out
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &[u64; K]) -> bool {
        self.get_with(key, |_| ()).is_some()
    }

    /// Total entries, from one consistent snapshot.
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// Whether the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pins a consistent point-in-time view across all shards: the
    /// returned [`Snapshot`] serves `get`/`query`/`knn`/`stats` from
    /// one cut of the write history, unaffected by concurrent writes
    /// and splits (see [`crate::snapshot`] module docs for the cut
    /// protocol). Cheap: one pinned `Arc` per shard; versions share
    /// structure with the live trees copy-on-write.
    pub fn snapshot(&self) -> Snapshot<V, K> {
        // Optimistic: collect between two quiet observations of the
        // write clock. Never blocks writers.
        for _ in 0..SNAPSHOT_SPIN {
            let Some(begun) = self.clock.stable() else {
                std::hint::spin_loop();
                continue;
            };
            let inner = self.load_state();
            let roots: Vec<Option<Arc<Published<V, K>>>> = inner
                .cells
                .iter()
                .map(|c| c.as_ref().map(|c| c.published.load()))
                .collect();
            if self.clock.begun() == begun {
                return Snapshot::new(Arc::clone(&inner.map), roots, self.swap_metrics.clone());
            }
        }
        // Sustained write pressure starved the optimistic loop: freeze
        // the cut by holding every live cell's writer lock (slot order;
        // publications happen under these locks). A split mid-install
        // shows up as a retired cell — re-route and re-lock.
        'retry: loop {
            let inner = self.load_state();
            let live = inner.map.live_slots();
            let mut guards = Vec::with_capacity(live.len());
            for &s in &live {
                let cell = inner.cell(s);
                let guard = cell.writer.lock();
                if cell.retired.load(Ordering::SeqCst) {
                    continue 'retry;
                }
                guards.push(guard);
            }
            let roots: Vec<Option<Arc<Published<V, K>>>> = inner
                .cells
                .iter()
                .map(|c| c.as_ref().map(|c| c.published.load()))
                .collect();
            return Snapshot::new(Arc::clone(&inner.map), roots, self.swap_metrics.clone());
        }
    }

    /// Counts entries in the window `[min, max]` without materialising
    /// them, against one consistent snapshot. Prunes shards by prefix
    /// mask; survivors are scanned sequentially (counting is cheap —
    /// cloning is what fan-out is for).
    pub fn query_count(&self, min: &[u64; K], max: &[u64; K]) -> usize {
        let t = self.metrics.query_count.start();
        let snap = self.snapshot();
        let matching = snap.router().matching_shards(min, max);
        self.note_pruning(snap.shards(), matching.len());
        self.metrics.fanout.record(matching.len() as u64);
        let out = matching
            .into_iter()
            .map(|s| snap.root(s).tree.query(min, max).count())
            .sum();
        self.metrics.query_count.finish(t);
        out
    }

    /// Snapshot of shard sizes, routing epoch and pruning counters.
    pub fn stats(&self) -> ShardStats {
        let mut s = self.snapshot().stats();
        s.threads = self.pool.threads();
        s.shards_scanned = self.scanned.load(Ordering::Relaxed);
        s.shards_pruned = self.pruned.load(Ordering::Relaxed);
        s
    }

    fn note_pruning(&self, shards: usize, matched: usize) {
        self.scanned.fetch_add(matched as u64, Ordering::Relaxed);
        self.pruned
            .fetch_add((shards - matched) as u64, Ordering::Relaxed);
    }
}

impl<V: Clone + Send + Sync + 'static, const K: usize> ShardedTree<V, K> {
    /// Returns a clone of the value at `key` from the current
    /// published version (use [`ShardedTree::get_with`] to borrow
    /// instead). Lock-free.
    pub fn get(&self, key: &[u64; K]) -> Option<V> {
        self.get_with(key, V::clone)
    }

    /// Collects all entries in the window `[min, max]` (inclusive
    /// corners), in global Z-order.
    ///
    /// The scan runs against one pinned [`Snapshot`] — a consistent
    /// cut of the write history — so concurrent writes, batches and
    /// splits can never tear the result. Shards whose prefix region is
    /// disjoint from the window are pruned by the routing map's mask
    /// walk; the survivors' pinned versions are scanned in parallel on
    /// the worker pool with no locks held. Because shard regions are
    /// Z-order prefixes and [`ShardMap::matching_shards`] yields them
    /// in Z-order, concatenating per-shard results yields exactly the
    /// order a single unsharded tree's query iterator produces.
    pub fn query(&self, min: &[u64; K], max: &[u64; K]) -> Vec<([u64; K], V)> {
        let t = self.metrics.query.start();
        let snap = self.snapshot();
        let matching = snap.router().matching_shards(min, max);
        self.note_pruning(snap.shards(), matching.len());
        self.metrics.fanout.record(matching.len() as u64);
        let (min, max) = (*min, *max);
        // The scatter/merge bracket is the request's fan-out phase;
        // each worker re-attaches the ambient trace context so its
        // per-shard descent span lands in the same trace.
        let ctx = phtrace::current();
        let fan = phtrace::span(phtrace::Phase::FanOut);
        phtrace::add(phtrace::PayloadCounter::Fanout, matching.len() as u64);
        let tasks: Vec<(String, Task<Vec<Entry<V, K>>>)> = matching
            .into_iter()
            .map(|s| {
                let root = Arc::clone(snap.root(s));
                let task = Box::new(move || {
                    let _g = ctx.attach();
                    let _d = phtrace::span(phtrace::Phase::Descent).with_shard(s);
                    root.tree
                        .query(&min, &max)
                        .map(|(k, v)| (k, v.clone()))
                        .collect()
                }) as Task<Vec<Entry<V, K>>>;
                (format!("query:shard-{s}"), task)
            })
            .collect();
        let mut out = Vec::new();
        for chunk in self.pool.scatter_labeled(tasks) {
            out.extend(chunk);
        }
        drop(fan);
        self.metrics.query.finish(t);
        out
    }

    /// The `n` entries nearest to `center` under integer Euclidean
    /// distance, nearest first, as `(key, value, distance)`.
    ///
    /// Every shard's pinned version answers its local kNN in parallel
    /// against one consistent [`Snapshot`] (no locks); the global
    /// result is a bounded k-way heap merge of the per-shard lists
    /// (each already sorted), stopping after `n` results.
    pub fn knn(&self, center: &[u64; K], n: usize) -> Vec<([u64; K], V, f64)> {
        if n == 0 {
            return Vec::new();
        }
        let t = self.metrics.knn.start();
        let snap = self.snapshot();
        let center = *center;
        let slots = snap.router().live_slots();
        let ctx = phtrace::current();
        let fan = phtrace::span(phtrace::Phase::FanOut);
        phtrace::add(phtrace::PayloadCounter::Fanout, slots.len() as u64);
        let tasks: Vec<(String, Task<Vec<Scored<V, K>>>)> = slots
            .into_iter()
            .map(|s| {
                let root = Arc::clone(snap.root(s));
                let task = Box::new(move || {
                    let _g = ctx.attach();
                    let _d = phtrace::span(phtrace::Phase::Descent).with_shard(s);
                    root.tree
                        .knn(&center, n)
                        .into_iter()
                        .map(|nb| (nb.key, nb.value.clone(), nb.dist))
                        .collect()
                }) as Task<Vec<Scored<V, K>>>;
                (format!("knn:shard-{s}"), task)
            })
            .collect();
        let lists = self.pool.scatter_labeled(tasks);
        self.metrics
            .merge_candidates
            .record(lists.iter().map(Vec::len).sum::<usize>() as u64);
        let out = merge_nearest(lists, n, |e| e.2);
        drop(fan);
        self.metrics.knn.finish(t);
        out
    }

    /// Bulk-inserts `items`, partitioning them by shard once and
    /// loading each partition under one write-lock acquisition on the
    /// worker pool. An empty shard gets its partition through
    /// [`PhTree::bulk_load`]'s O(n) bottom-up builder (the ingest fast
    /// path); a non-empty shard falls back to per-key inserts. Returns
    /// the number of *new* keys (duplicates overwrite, like
    /// [`ShardedTree::insert`]).
    ///
    /// Each shard's partition is published as **one** version: a
    /// concurrent snapshot sees all of a shard's batch or none of it
    /// (per-shard batch atomicity; the durable layer's ordered
    /// multi-lock bulk load upgrades this to cross-shard atomicity).
    /// Partitions whose cell retires mid-load come back untouched and
    /// are re-routed through the new epoch.
    pub fn bulk_load(&self, items: Vec<([u64; K], V)>) -> usize {
        let t = self.metrics.bulk_load.start();
        let mut pending = items;
        let mut new_total = 0usize;
        while !pending.is_empty() {
            let inner = self.load_state();
            let bound = inner.map.slot_bound();
            let mut parts: Vec<Vec<([u64; K], V)>> = (0..bound).map(|_| Vec::new()).collect();
            for (key, value) in pending.drain(..) {
                parts[inner.map.route(&key)].push((key, value));
            }
            type LoadOut<V, const K: usize> = Result<usize, Vec<([u64; K], V)>>;
            let ctx = phtrace::current();
            let fan = phtrace::span(phtrace::Phase::FanOut);
            let tasks: Vec<(String, Task<LoadOut<V, K>>)> = parts
                .into_iter()
                .enumerate()
                .filter(|(_, p)| !p.is_empty())
                .map(|(s, part)| {
                    self.metrics.add_shard_ops(s, part.len() as u64);
                    let cell = Arc::clone(inner.cell(s));
                    let clock = Arc::clone(&self.clock);
                    let swap_metrics = self.swap_metrics.clone();
                    let task = Box::new(move || {
                        let _g = ctx.attach();
                        let _d = phtrace::span(phtrace::Phase::Descent).with_shard(s);
                        let mut guard = cell.writer.lock();
                        if cell.retired.load(Ordering::SeqCst) {
                            return Err(part); // re-route under the new epoch
                        }
                        let new = if guard.is_empty() {
                            // Bottom-up bulk build: every key in the
                            // partition is new (duplicates within the
                            // batch collapse last-write-wins, same as
                            // the insert loop below).
                            *guard = PhTree::bulk_load(part);
                            guard.len()
                        } else {
                            let mut new = 0usize;
                            for (k, v) in part {
                                if guard.insert(k, v).is_none() {
                                    new += 1;
                                }
                            }
                            new
                        };
                        // One publication for the whole partition: the
                        // shard's batch is atomic to snapshots.
                        clock.bracket(|| cell.publish(guard.clone(), &swap_metrics));
                        Ok(new)
                    }) as Task<LoadOut<V, K>>;
                    (format!("bulk_load:shard-{s}"), task)
                })
                .collect();
            phtrace::add(phtrace::PayloadCounter::Fanout, tasks.len() as u64);
            for r in self.pool.scatter_labeled(tasks) {
                match r {
                    Ok(n) => new_total += n,
                    Err(part) => pending.extend(part),
                }
            }
            drop(fan);
        }
        self.metrics.bulk_load.finish(t);
        new_total
    }

    /// Splits the live shard `slot` into `2^bits` children, deepening
    /// its Z-prefix — the in-memory half of online rebalancing.
    ///
    /// The parent's entries are partitioned by the successor routing
    /// map and rebuilt into the children via [`PhTree::bulk_load`]
    /// under the parent's writer lock, so the split is atomic: every
    /// other shard stays fully available throughout, and operations
    /// already waiting on the parent re-route to the children the
    /// moment the lock releases (the retired-cell retry). The retire
    /// and the successor-state install happen inside **one**
    /// write-clock bracket, ordered retire-first: lock-free readers
    /// check `retired` after loading a published root, so they either
    /// read the parent's complete pre-split version or re-route to a
    /// child — never a gap. Snapshots pinned before the split keep the
    /// parent's published version. Splits are serialised with each
    /// other; the routing epoch increments by one.
    pub fn split_shard(&self, slot: usize, bits: u32) -> Result<SplitReport, ShardError> {
        let _gate = self.split_gate.lock().unwrap();
        let inner = self.load_state();
        let cell = inner
            .cells
            .get(slot)
            .and_then(|c| c.as_ref())
            .filter(|c| !c.retired.load(Ordering::SeqCst))
            .ok_or(ShardError::UnknownSlot { slot })
            .inspect_err(|_| self.reb_metrics.split_failures.inc())?;
        // The gate guarantees no other split runs, so the map we
        // derive from is the one we install over.
        let (map2, children) = inner
            .map
            .split(slot, bits)
            .inspect_err(|_| self.reb_metrics.split_failures.inc())?;
        self.reb_metrics.migration_inflight.add(1);

        let mut guard = cell.writer.lock();
        let tree = std::mem::replace(&mut *guard, PhTree::new());
        let migrated = tree.len();
        let base = children[0];
        let mut parts: Vec<Vec<([u64; K], V)>> = (0..children.len()).map(|_| Vec::new()).collect();
        for (k, v) in tree.iter() {
            parts[map2.route(&k) - base].push((k, v.clone()));
        }
        let mut cells = inner.cells.clone();
        cells.resize(map2.slot_bound(), None);
        cells[slot] = None;
        for (i, part) in parts.into_iter().enumerate() {
            cells[base + i] = Some(MemCell::fresh(PhTree::bulk_load(part)));
            self.swap_metrics.root_swaps.inc();
        }
        let epoch = map2.epoch();
        // Retire, then install, in one clock bracket, still under the
        // parent's writer lock: readers loading the parent's root see
        // retired=true and re-route; snapshots see begun != done and
        // wait the bracket out, so no snapshot captures a half-split
        // topology. The parent keeps its published (pre-split) root
        // for snapshots already pinned.
        self.clock.bracket(|| {
            cell.retired.store(true, Ordering::SeqCst);
            self.state.store(Arc::new(MemInner {
                map: Arc::new(map2),
                cells,
            }));
        });
        drop(guard);

        self.reb_metrics.migration_inflight.add(-1);
        self.reb_metrics.splits.inc();
        self.reb_metrics.migrated_entries.add(migrated as u64);
        self.reb_metrics.routing_epoch.set(epoch as i64);
        Ok(SplitReport {
            src: slot,
            children,
            migrated,
            backlog_drained: 0,
            epoch,
        })
    }
}

impl<V: Clone, const K: usize> Default for ShardedTree<V, K> {
    fn default() -> Self {
        Self::new(1)
    }
}
