//! CB2: arena-based crit-bit tree with index links and free lists.
//!
//! Same algorithm as [`crate::CritBit1`], different engineering: all
//! inner nodes live in one vector and all leaves in another, linked by
//! 32-bit indices. Two large allocations instead of `2n − 1` boxes —
//! lower bytes/entry and better locality, the same spread the paper
//! reports between its CB1 and CB2 libraries.

use crate::morton::{deinterleave, first_diff_m, interleave, mbit};
use crate::ALLOC_OVERHEAD;

/// Child reference: leaves are encoded as `!leaf_index`, inner nodes as
/// the index itself. (`i32`-style encoding in a `u32`.)
type Ref = u32;

#[inline]
fn is_leaf(r: Ref) -> bool {
    r & (1 << 31) != 0
}

#[inline]
fn leaf_ref(i: usize) -> Ref {
    (i as u32) | (1 << 31)
}

#[inline]
fn leaf_idx(r: Ref) -> usize {
    (r & !(1 << 31)) as usize
}

const NONE: Ref = !(1 << 31); // inner sentinel never allocated

struct Inner {
    crit: u32,
    children: [Ref; 2],
}

struct Leaf<V, const K: usize> {
    /// The key in materialised Morton (interleaved) form.
    mkey: [u64; K],
    value: Option<V>, // None = free-list slot
    next_free: u32,
}

/// An arena-allocated binary PATRICIA trie over interleaved `[u64; K]`
/// keys (the paper's "CB2").
///
/// ```
/// use critbit::CritBit2;
///
/// let mut t: CritBit2<u32, 3> = CritBit2::new();
/// t.insert([1, 2, 3], 7);
/// t.insert([1, 2, 4], 8);
/// assert_eq!(t.get(&[1, 2, 4]), Some(&8));
/// assert_eq!(t.remove(&[1, 2, 3]), Some(7));
/// ```
pub struct CritBit2<V, const K: usize> {
    inners: Vec<Inner>,
    leaves: Vec<Leaf<V, K>>,
    root: Ref,
    len: usize,
    free_inner: u32,
    free_leaf: u32,
}

const FREE_END: u32 = u32::MAX;

impl<V, const K: usize> Default for CritBit2<V, K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V, const K: usize> CritBit2<V, K> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        assert!(K >= 1);
        CritBit2 {
            inners: Vec::new(),
            leaves: Vec::new(),
            root: NONE,
            len: 0,
            free_inner: FREE_END,
            free_leaf: FREE_END,
        }
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn alloc_leaf(&mut self, mkey: [u64; K], value: V) -> Ref {
        if self.free_leaf != FREE_END {
            let i = self.free_leaf as usize;
            self.free_leaf = self.leaves[i].next_free;
            self.leaves[i].mkey = mkey;
            self.leaves[i].value = Some(value);
            leaf_ref(i)
        } else {
            self.leaves.push(Leaf {
                mkey,
                value: Some(value),
                next_free: FREE_END,
            });
            leaf_ref(self.leaves.len() - 1)
        }
    }

    fn free_leaf_slot(&mut self, i: usize) -> V {
        let v = self.leaves[i].value.take().expect("double free");
        self.leaves[i].next_free = self.free_leaf;
        self.free_leaf = i as u32;
        v
    }

    fn alloc_inner(&mut self, crit: u32, children: [Ref; 2]) -> Ref {
        if self.free_inner != FREE_END {
            let i = self.free_inner as usize;
            self.free_inner = self.inners[i].children[0];
            self.inners[i] = Inner { crit, children };
            i as Ref
        } else {
            self.inners.push(Inner { crit, children });
            (self.inners.len() - 1) as Ref
        }
    }

    fn free_inner_slot(&mut self, i: usize) {
        self.inners[i].children = [self.free_inner, NONE];
        self.inners[i].crit = u32::MAX;
        self.free_inner = i as u32;
    }

    /// Walks to the leaf selected by the crit bits of morton key `m`.
    fn walk_leaf(&self, m: &[u64; K]) -> Option<usize> {
        if self.root == NONE {
            return None;
        }
        let mut r = self.root;
        while !is_leaf(r) {
            let n = &self.inners[r as usize];
            r = n.children[mbit(m, n.crit) as usize];
        }
        Some(leaf_idx(r))
    }

    /// Point query (pays the O(w·k) interleaving, like the paper's
    /// setup).
    pub fn get(&self, key: &[u64; K]) -> Option<&V> {
        let m = interleave(key);
        let i = self.walk_leaf(&m)?;
        let l = &self.leaves[i];
        if l.mkey == m {
            l.value.as_ref()
        } else {
            None
        }
    }

    /// Whether `key` is stored.
    pub fn contains(&self, key: &[u64; K]) -> bool {
        self.get(key).is_some()
    }

    /// Inserts `key → value`, returning the previous value if present.
    pub fn insert(&mut self, key: [u64; K], value: V) -> Option<V> {
        let m = interleave(&key);
        let Some(nearest) = self.walk_leaf(&m) else {
            self.root = self.alloc_leaf(m, value);
            self.len = 1;
            return None;
        };
        let crit = match first_diff_m(&m, &self.leaves[nearest].mkey) {
            None => {
                return self.leaves[nearest].value.replace(value);
            }
            Some(c) => c,
        };
        // Descend to the splice point: the first link whose target is a
        // leaf or an inner with crit > ours.
        let bit = mbit(&m, crit) as usize;
        let new_leaf = self.alloc_leaf(m, value);
        // Find the link to replace. Track (parent_inner, side); parent
        // NONE means root.
        let mut parent: Ref = NONE;
        let mut side = 0usize;
        let mut cur = self.root;
        while !is_leaf(cur) && self.inners[cur as usize].crit < crit {
            let n = &self.inners[cur as usize];
            parent = cur;
            side = mbit(&m, n.crit) as usize;
            cur = n.children[side];
        }
        let children = if bit == 1 {
            [cur, new_leaf]
        } else {
            [new_leaf, cur]
        };
        let inner = self.alloc_inner(crit, children);
        if parent == NONE {
            self.root = inner;
        } else {
            self.inners[parent as usize].children[side] = inner;
        }
        self.len += 1;
        None
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&mut self, key: &[u64; K]) -> Option<V> {
        let m = interleave(key);
        if self.root == NONE {
            return None;
        }
        if is_leaf(self.root) {
            let i = leaf_idx(self.root);
            if self.leaves[i].mkey != m {
                return None;
            }
            let v = self.free_leaf_slot(i);
            self.root = NONE;
            self.len = 0;
            return Some(v);
        }
        // Walk with grandparent tracking.
        let mut grand: Ref = NONE;
        let mut grand_side = 0usize;
        let mut parent = self.root;
        loop {
            let n = &self.inners[parent as usize];
            let side = mbit(&m, n.crit) as usize;
            let child = n.children[side];
            if is_leaf(child) {
                let li = leaf_idx(child);
                if self.leaves[li].mkey != m {
                    return None;
                }
                let sibling = n.children[1 - side];
                if grand == NONE {
                    self.root = sibling;
                } else {
                    self.inners[grand as usize].children[grand_side] = sibling;
                }
                self.free_inner_slot(parent as usize);
                let v = self.free_leaf_slot(li);
                self.len -= 1;
                return Some(v);
            }
            grand = parent;
            grand_side = side;
            parent = child;
        }
    }

    /// Visits every entry in interleaved-key order.
    pub fn for_each(&self, visit: &mut dyn FnMut(&[u64; K], &V)) {
        if self.root == NONE {
            return;
        }
        let mut stack = vec![self.root];
        while let Some(r) = stack.pop() {
            if is_leaf(r) {
                let l = &self.leaves[leaf_idx(r)];
                visit(&deinterleave(&l.mkey), l.value.as_ref().expect("live leaf"));
            } else {
                let n = &self.inners[r as usize];
                stack.push(n.children[1]);
                stack.push(n.children[0]);
            }
        }
    }

    /// Window "query" by guarded scan (see [`crate::CritBit1::window_scan`]).
    pub fn window_scan(
        &self,
        min: &[u64; K],
        max: &[u64; K],
        visit: &mut dyn FnMut(&[u64; K], &V),
    ) {
        self.for_each(&mut |k, v| {
            if (0..K).all(|d| min[d] <= k[d] && k[d] <= max[d]) {
                visit(k, v);
            }
        });
    }

    /// Heap bytes: the two arena allocations (including free-list slack).
    pub fn memory_bytes(&self) -> usize {
        let mut b = 0;
        if self.inners.capacity() > 0 {
            b += self.inners.capacity() * std::mem::size_of::<Inner>() + ALLOC_OVERHEAD;
        }
        if self.leaves.capacity() > 0 {
            b += self.leaves.capacity() * std::mem::size_of::<Leaf<V, K>>() + ALLOC_OVERHEAD;
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u64) -> Vec<[u64; 3]> {
        let mut x = 131u64;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                [x % 512, (x >> 20) % 512, (x >> 40) % 512]
            })
            .collect()
    }

    #[test]
    fn basic_ops() {
        let mut t: CritBit2<u32, 3> = CritBit2::new();
        assert_eq!(t.insert([0, 0, 0], 1), None);
        assert_eq!(t.insert([0, 0, 0], 2), Some(1));
        assert_eq!(t.insert([0, 0, 1], 3), None);
        assert_eq!(t.get(&[0, 0, 0]), Some(&2));
        assert_eq!(t.remove(&[0, 0, 0]), Some(2));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&[0, 0, 1]), Some(&3));
    }

    #[test]
    fn model_check_with_freelist_reuse() {
        let mut t: CritBit2<usize, 3> = CritBit2::new();
        let mut model = std::collections::BTreeMap::new();
        let ks = keys(2500);
        for (i, k) in ks.iter().enumerate() {
            assert_eq!(t.insert(*k, i), model.insert(*k, i));
        }
        // Remove and re-add interleaved to exercise the free lists.
        for (round, k) in ks.iter().enumerate() {
            if round % 2 == 0 {
                assert_eq!(t.remove(k), model.remove(k));
            } else {
                let v = round * 10;
                assert_eq!(t.insert(*k, v), model.insert(*k, v));
            }
        }
        assert_eq!(t.len(), model.len());
        for k in &ks {
            assert_eq!(t.get(k), model.get(k));
        }
        let mut n = 0;
        t.for_each(&mut |k, v| {
            assert_eq!(model.get(k), Some(v));
            n += 1;
        });
        assert_eq!(n, model.len());
    }

    #[test]
    fn agrees_with_cb1() {
        let ks = keys(1000);
        let mut a: crate::CritBit1<usize, 3> = crate::CritBit1::new();
        let mut b: CritBit2<usize, 3> = CritBit2::new();
        for (i, k) in ks.iter().enumerate() {
            assert_eq!(a.insert(*k, i), b.insert(*k, i));
        }
        for k in ks.iter().step_by(7) {
            assert_eq!(a.remove(k), b.remove(k));
        }
        assert_eq!(a.len(), b.len());
        for k in &ks {
            assert_eq!(a.get(k), b.get(k));
        }
    }

    #[test]
    fn cb2_uses_less_memory_than_cb1() {
        let ks = keys(2000);
        let mut a: crate::CritBit1<u64, 3> = crate::CritBit1::new();
        let mut b: CritBit2<u64, 3> = CritBit2::new();
        for (i, k) in ks.iter().enumerate() {
            a.insert(*k, i as u64);
            b.insert(*k, i as u64);
        }
        assert!(
            b.memory_bytes() < a.memory_bytes(),
            "CB2 {} should be below CB1 {}",
            b.memory_bytes(),
            a.memory_bytes()
        );
    }

    #[test]
    fn remove_everything_then_reinsert() {
        let mut t: CritBit2<(), 3> = CritBit2::new();
        let ks = keys(300);
        let uniq: std::collections::BTreeSet<_> = ks.iter().copied().collect();
        for k in &ks {
            t.insert(*k, ());
        }
        for k in &uniq {
            assert_eq!(t.remove(k), Some(()));
        }
        assert!(t.is_empty());
        for k in &ks {
            t.insert(*k, ());
        }
        assert_eq!(t.len(), uniq.len());
    }
}
