//! Morton (z-order) interleaving of multi-dimensional keys.
//!
//! The paper's crit-bit baselines store each `k`-dimensional key as a
//! single interleaved bit string ("we interleaved the k values of each
//! entry into a single bit-stream", Sect. 4.1) using the naive O(w·k)
//! per-bit algorithm. This module provides exactly that: every insert
//! and every query pays the interleaving cost, which is the source of
//! the linear-in-k scaling the paper reports for CB trees.

/// Interleaves a `K`-dimensional key into `K` words of Morton order:
/// interleaved bit `i` (0 = most significant, = bit 63 of dimension 0)
/// is stored at `out[i / 64]`, bit position `63 - i % 64`.
///
/// Deliberately the naive per-bit O(w·k) algorithm the paper describes.
///
/// ```
/// let m = critbit::morton::interleave(&[1u64 << 63, 0]);
/// assert_eq!(m[0] >> 63, 1); // dim-0 MSB is interleaved bit 0
/// let m = critbit::morton::interleave(&[0, 1u64 << 63]);
/// assert_eq!((m[0] >> 62) & 1, 1); // dim-1 MSB is interleaved bit 1
/// ```
pub fn interleave<const K: usize>(key: &[u64; K]) -> [u64; K] {
    let mut out = [0u64; K];
    for bit in 0..64u32 {
        for (d, &v) in key.iter().enumerate() {
            let i = bit as usize * K + d;
            let b = (v >> (63 - bit)) & 1;
            out[i / 64] |= b << (63 - (i % 64) as u32);
        }
    }
    out
}

/// Inverse of [`interleave`].
pub fn deinterleave<const K: usize>(m: &[u64; K]) -> [u64; K] {
    let mut out = [0u64; K];
    for bit in 0..64u32 {
        for (d, v) in out.iter_mut().enumerate() {
            let i = bit as usize * K + d;
            let b = (m[i / 64] >> (63 - (i % 64) as u32)) & 1;
            *v |= b << (63 - bit);
        }
    }
    out
}

/// Bit `i` of a materialised Morton string (0 = most significant).
#[inline]
pub fn mbit(m: &[u64], i: u32) -> u64 {
    (m[(i / 64) as usize] >> (63 - i % 64)) & 1
}

/// Index of the first differing bit between two Morton strings, or
/// `None` if equal. Word-wise lexicographic scan.
#[inline]
pub fn first_diff_m(a: &[u64], b: &[u64]) -> Option<u32> {
    for (w, (&x, &y)) in a.iter().zip(b).enumerate() {
        let d = x ^ y;
        if d != 0 {
            return Some(w as u32 * 64 + d.leading_zeros());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ibit;

    #[test]
    fn roundtrip() {
        let keys: [[u64; 3]; 4] = [
            [0, 0, 0],
            [u64::MAX, 0, u64::MAX],
            [0xDEAD_BEEF, 0x0123_4567_89AB_CDEF, 42],
            [1 << 63, 1, 1 << 32],
        ];
        for k in &keys {
            assert_eq!(deinterleave(&interleave(k)), *k);
        }
    }

    #[test]
    fn mbit_matches_lazy_ibit() {
        let key = [0xAAAA_5555_0F0F_F0F0u64, 0x1234_5678_9ABC_DEF0];
        let m = interleave(&key);
        for i in 0..128 {
            assert_eq!(mbit(&m, i), ibit(&key, i), "bit {i}");
        }
    }

    #[test]
    fn first_diff_consistent_with_lazy() {
        let a = [5u64, 9, 1 << 40];
        let b = [5u64, 9, (1 << 40) | (1 << 13)];
        let (ma, mb) = (interleave(&a), interleave(&b));
        assert_eq!(first_diff_m(&ma, &mb), crate::first_diff(&a, &b));
        assert_eq!(first_diff_m(&ma, &ma), None);
    }

    #[test]
    fn morton_order_is_z_order() {
        // Interleaved comparison sorts by the Z-order curve.
        let pts = [[0u64, 0], [0, 1], [1, 0], [1, 1], [0, 2], [2, 0], [3, 3]];
        let mut by_morton: Vec<[u64; 2]> = pts.to_vec();
        by_morton.sort_by_key(interleave);
        let mut by_lazy: Vec<[u64; 2]> = pts.to_vec();
        by_lazy.sort_by_key(|p| (0..128).map(|i| ibit(p, i)).collect::<Vec<_>>());
        assert_eq!(by_morton, by_lazy);
    }
}
