//! Critical-bit tree (binary PATRICIA trie) baselines CB1/CB2.
//!
//! The paper's evaluation (Sect. 4.1) compares the PH-tree against two
//! "crit-bit" trees: binary PATRICIA tries over the **interleaved**
//! bit-string of a multi-dimensional key, as proposed by Nickerson & Shi
//! and Kirschenhofer et al. This crate provides two independent
//! implementations:
//!
//! * [`CritBit1`] — the classic pointer-linked crit-bit tree: leaves
//!   hold the full key, inner nodes hold the index of the first
//!   differing interleaved bit.
//! * [`CritBit2`] — an arena-based variant with index links and free
//!   lists: fewer allocations, better locality, lower bytes/entry
//!   (mirroring the CB1/CB2 spread in the paper's Table 1).
//!
//! Keys are `[u64; K]` integers (convert floats with
//! `phtree::key::f64_to_key`). The interleaving is bit-level
//! round-robin: interleaved bit `i` is bit `63 - i/K` of dimension
//! `i % K`, most significant first.
//!
//! Range queries are implemented as guarded scans
//! ([`CritBit1::window_scan`]): as the paper notes, crit-bit trees over
//! interleaved keys have no efficient range query — the scan visits
//! essentially the whole trie and is measured separately to demonstrate
//! exactly that.

#![warn(missing_docs)]

pub mod cb1;
pub mod cb2;
pub mod morton;

pub use cb1::CritBit1;
pub use cb2::CritBit2;

/// Assumed allocator overhead per heap allocation (kept equal across all
/// crates for fair space comparisons).
pub const ALLOC_OVERHEAD: usize = 16;

/// Returns interleaved bit `i` of `key` (0 = most significant bit of
/// dimension 0).
///
/// ```
/// // 2-D: bit 0 is the MSB of dim 0, bit 1 the MSB of dim 1, bit 2 the
/// // second bit of dim 0, …
/// assert_eq!(critbit::ibit(&[1u64 << 63, 0], 0), 1);
/// assert_eq!(critbit::ibit(&[0, 1u64 << 63], 1), 1);
/// assert_eq!(critbit::ibit(&[1u64 << 62, 0], 2), 1);
/// ```
#[inline]
pub fn ibit(key: &[u64], i: u32) -> u64 {
    let k = key.len() as u32;
    (key[(i % k) as usize] >> (63 - i / k)) & 1
}

/// Index of the first differing interleaved bit between `a` and `b`, or
/// `None` if equal. O(k), not O(k·w): per-dimension XOR + leading_zeros.
#[inline]
pub fn first_diff(a: &[u64], b: &[u64]) -> Option<u32> {
    let k = a.len() as u32;
    let mut best: Option<u32> = None;
    for d in 0..k {
        let x = a[d as usize] ^ b[d as usize];
        if x != 0 {
            let i = x.leading_zeros() * k + d;
            if best.is_none_or(|b| i < b) {
                best = Some(i);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ibit_interleaving_order() {
        let key = [0b10u64 << 62, 0b01u64 << 62]; // dim0 = 10…, dim1 = 01…
        assert_eq!(ibit(&key, 0), 1); // dim0 bit 63
        assert_eq!(ibit(&key, 1), 0); // dim1 bit 63
        assert_eq!(ibit(&key, 2), 0); // dim0 bit 62
        assert_eq!(ibit(&key, 3), 1); // dim1 bit 62
    }

    #[test]
    fn first_diff_picks_earliest_interleaved_position() {
        // dim1 differs at bit 63 (interleaved 1), dim0 at bit 62
        // (interleaved 2) → first diff is 1.
        let a = [0u64, 0u64];
        let b = [1u64 << 62, 1u64 << 63];
        assert_eq!(first_diff(&a, &b), Some(1));
        assert_eq!(first_diff(&a, &a), None);
        // Lowest possible difference.
        assert_eq!(first_diff(&[0, 0], &[0, 1]), Some(63 * 2 + 1));
    }

    #[test]
    fn first_diff_matches_bit_scan() {
        let a = [0xDEAD_BEEF_0123_4567u64, 0x0F0F_F0F0_AAAA_5555];
        let b = [0xDEAD_BEEF_0123_4567u64, 0x0F0F_F0F0_AAAA_5554];
        let want = (0..128).find(|&i| ibit(&a, i) != ibit(&b, i));
        assert_eq!(first_diff(&a, &b), want);
    }
}
