//! CB1: classic pointer-linked crit-bit tree over interleaved keys.

use crate::morton::{deinterleave, first_diff_m, interleave, mbit};
use crate::ALLOC_OVERHEAD;

type Link<V, const K: usize> = Option<Box<Node<V, K>>>;

enum Node<V, const K: usize> {
    Leaf {
        /// The key in materialised Morton (interleaved) form — the
        /// paper's CB baselines store the interleaved bit string and
        /// pay the O(w·k) conversion on every operation.
        mkey: [u64; K],
        value: V,
    },
    Inner {
        /// Interleaved index of the first bit at which the two subtrees
        /// differ; all keys below agree on bits `0..crit`.
        crit: u32,
        /// `children[0]` holds keys with bit `crit` = 0. Always `Some`;
        /// the `Option` exists only so nodes can be moved without
        /// placeholder values.
        children: [Link<V, K>; 2],
    },
}

/// A binary PATRICIA trie over the interleaved bit-string of `[u64; K]`
/// keys (the paper's "CB1").
///
/// ```
/// use critbit::CritBit1;
///
/// let mut t: CritBit1<u32, 2> = CritBit1::new();
/// t.insert([1, 2], 1);
/// t.insert([1, 3], 2);
/// assert_eq!(t.get(&[1, 3]), Some(&2));
/// assert_eq!(t.remove(&[1, 2]), Some(1));
/// assert_eq!(t.len(), 1);
/// ```
pub struct CritBit1<V, const K: usize> {
    root: Link<V, K>,
    len: usize,
}

impl<V, const K: usize> Default for CritBit1<V, K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V, const K: usize> CritBit1<V, K> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        assert!(K >= 1);
        CritBit1 { root: None, len: 0 }
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Walks to the leaf the crit bits select for morton key `m`.
    fn walk<'t>(&'t self, m: &[u64; K]) -> Option<(&'t [u64; K], &'t V)> {
        let mut n = self.root.as_deref()?;
        loop {
            match n {
                Node::Leaf { mkey, value } => return Some((mkey, value)),
                Node::Inner { crit, children } => {
                    n = children[mbit(m, *crit) as usize]
                        .as_deref()
                        .expect("inner children are always populated");
                }
            }
        }
    }

    /// Point query (pays the O(w·k) interleaving, like the paper's
    /// setup).
    pub fn get(&self, key: &[u64; K]) -> Option<&V> {
        let m = interleave(key);
        match self.walk(&m)? {
            (k, value) if *k == m => Some(value),
            _ => None,
        }
    }

    /// Whether `key` is stored.
    pub fn contains(&self, key: &[u64; K]) -> bool {
        self.get(key).is_some()
    }

    /// Inserts `key → value`, returning the previous value if present.
    pub fn insert(&mut self, key: [u64; K], value: V) -> Option<V> {
        let m = interleave(&key);
        if self.root.is_none() {
            self.root = Some(Box::new(Node::Leaf { mkey: m, value }));
            self.len = 1;
            return None;
        }
        // Pass 1: find the best-matching leaf and the diverging bit.
        let (leaf_key, _) = self.walk(&m).expect("non-empty");
        let crit = match first_diff_m(&m, leaf_key) {
            None => {
                // Exact match: replace the value in place.
                let mut n = self.root.as_deref_mut().expect("non-empty");
                loop {
                    match n {
                        Node::Leaf { value: v, .. } => {
                            return Some(std::mem::replace(v, value));
                        }
                        Node::Inner { crit, children } => {
                            n = children[mbit(&m, *crit) as usize]
                                .as_deref_mut()
                                .expect("inner children are always populated");
                        }
                    }
                }
            }
            Some(c) => c,
        };
        // Pass 2: descend while inner crits come before ours, then
        // splice a new inner node at that link.
        let mut link: &mut Link<V, K> = &mut self.root;
        loop {
            let descend = matches!(link.as_deref(), Some(Node::Inner { crit: c, .. }) if *c < crit);
            if !descend {
                break;
            }
            let Some(Node::Inner { crit: c, children }) = link.as_deref_mut() else {
                unreachable!()
            };
            let side = mbit(&m, *c) as usize;
            link = &mut children[side];
        }
        let bit = mbit(&m, crit) as usize;
        let old = link.take().expect("links on the search path are populated");
        let new_leaf = Box::new(Node::Leaf { mkey: m, value });
        let children = if bit == 1 {
            [Some(old), Some(new_leaf)]
        } else {
            [Some(new_leaf), Some(old)]
        };
        *link = Some(Box::new(Node::Inner { crit, children }));
        self.len += 1;
        None
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&mut self, key: &[u64; K]) -> Option<V> {
        let m = interleave(key);
        match self.root.as_deref() {
            None => return None,
            Some(Node::Leaf { mkey, .. }) => {
                if *mkey != m {
                    return None;
                }
                let Some(boxed) = self.root.take() else {
                    unreachable!()
                };
                let Node::Leaf { value, .. } = *boxed else {
                    unreachable!()
                };
                self.len = 0;
                return Some(value);
            }
            Some(Node::Inner { .. }) => {}
        }
        let v = Self::remove_rec(&mut self.root, &m)?;
        self.len -= 1;
        Some(v)
    }

    /// `link` must point at an inner node; removes the matching leaf
    /// below it, collapsing its parent into the sibling.
    fn remove_rec(link: &mut Link<V, K>, m: &[u64; K]) -> Option<V> {
        enum Act {
            Descend(usize),
            TakeLeaf(usize),
            NotFound,
        }
        let act = match link.as_deref() {
            Some(Node::Inner { crit, children }) => {
                let side = mbit(m, *crit) as usize;
                match children[side].as_deref() {
                    Some(Node::Leaf { mkey, .. }) => {
                        if mkey[..] == m[..] {
                            Act::TakeLeaf(side)
                        } else {
                            Act::NotFound
                        }
                    }
                    Some(Node::Inner { .. }) => Act::Descend(side),
                    None => unreachable!("inner children are always populated"),
                }
            }
            _ => Act::NotFound,
        };
        match act {
            Act::NotFound => None,
            Act::Descend(side) => {
                let Some(Node::Inner { children, .. }) = link.as_deref_mut() else {
                    unreachable!()
                };
                Self::remove_rec(&mut children[side], m)
            }
            Act::TakeLeaf(side) => {
                let old = link.take().expect("checked above");
                let Node::Inner { mut children, .. } = *old else {
                    unreachable!()
                };
                let leaf = children[side].take().expect("populated");
                let sibling = children[1 - side].take().expect("populated");
                *link = Some(sibling);
                let Node::Leaf { value, .. } = *leaf else {
                    unreachable!()
                };
                Some(value)
            }
        }
    }

    /// Visits every entry in interleaved-key order, de-interleaving
    /// each key for the callback (used by the unloading benchmark and
    /// the guarded range scan — the per-leaf O(w·k) conversion is part
    /// of why range scans over interleaved tries are slow).
    pub fn for_each(&self, visit: &mut dyn FnMut(&[u64; K], &V)) {
        fn walk<V, const K: usize>(n: &Node<V, K>, visit: &mut dyn FnMut(&[u64; K], &V)) {
            match n {
                Node::Leaf { mkey, value } => visit(&deinterleave(mkey), value),
                Node::Inner { children, .. } => {
                    walk(children[0].as_deref().expect("populated"), visit);
                    walk(children[1].as_deref().expect("populated"), visit);
                }
            }
        }
        if let Some(r) = self.root.as_deref() {
            walk(r, visit);
        }
    }

    /// Window "query": a scan over the trie. As the paper observes for
    /// the available crit-bit implementations, range queries over
    /// interleaved keys approach O(n) — this method exists to measure
    /// exactly that.
    pub fn window_scan(
        &self,
        min: &[u64; K],
        max: &[u64; K],
        visit: &mut dyn FnMut(&[u64; K], &V),
    ) {
        self.for_each(&mut |k, v| {
            if (0..K).all(|d| min[d] <= k[d] && k[d] <= max[d]) {
                visit(k, v);
            }
        });
    }

    /// Heap bytes: `len` leaves and `len − 1` inner nodes, each one
    /// boxed allocation.
    pub fn memory_bytes(&self) -> usize {
        if self.len == 0 {
            return 0;
        }
        let per_node = std::mem::size_of::<Node<V, K>>() + ALLOC_OVERHEAD;
        (2 * self.len - 1) * per_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u64) -> Vec<[u64; 2]> {
        let mut x = 31u64;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                [x % 4096, (x >> 30) % 4096]
            })
            .collect()
    }

    #[test]
    fn insert_get_replace_remove() {
        let mut t: CritBit1<u32, 2> = CritBit1::new();
        assert_eq!(t.insert([5, 6], 1), None);
        assert_eq!(t.insert([5, 6], 2), Some(1));
        assert_eq!(t.insert([5, 7], 3), None);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(&[5, 6]), Some(&2));
        assert_eq!(t.get(&[6, 5]), None);
        assert_eq!(t.remove(&[5, 6]), Some(2));
        assert_eq!(t.remove(&[5, 6]), None);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&[5, 7]), Some(&3));
        assert_eq!(t.remove(&[5, 7]), Some(3));
        assert!(t.is_empty());
    }

    #[test]
    fn bulk_model_check() {
        let mut t: CritBit1<usize, 2> = CritBit1::new();
        let mut model = std::collections::BTreeMap::new();
        let ks = keys(3000);
        for (i, k) in ks.iter().enumerate() {
            assert_eq!(t.insert(*k, i), model.insert(*k, i));
        }
        assert_eq!(t.len(), model.len());
        for k in ks.iter().step_by(3) {
            assert_eq!(t.remove(k), model.remove(k));
        }
        assert_eq!(t.len(), model.len());
        for k in &ks {
            assert_eq!(t.get(k), model.get(k));
        }
        let mut count = 0;
        t.for_each(&mut |_, _| count += 1);
        assert_eq!(count, model.len());
    }

    #[test]
    fn window_scan_filters_correctly() {
        let mut t: CritBit1<(), 2> = CritBit1::new();
        let ks = keys(500);
        for k in &ks {
            t.insert(*k, ());
        }
        let (min, max) = ([100u64, 100], [2000u64, 3000]);
        let mut got = Vec::new();
        t.window_scan(&min, &max, &mut |k, _| got.push(*k));
        got.sort();
        let mut want: Vec<[u64; 2]> = ks
            .iter()
            .filter(|k| (0..2).all(|d| min[d] <= k[d] && k[d] <= max[d]))
            .copied()
            .collect();
        want.sort();
        want.dedup();
        assert_eq!(got, want);
    }

    #[test]
    fn extreme_keys() {
        let mut t: CritBit1<u8, 1> = CritBit1::new();
        for (i, k) in [0u64, u64::MAX, 1 << 63, (1 << 63) - 1].iter().enumerate() {
            t.insert([*k], i as u8);
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.get(&[u64::MAX]), Some(&1));
        assert_eq!(t.get(&[(1 << 63) - 1]), Some(&3));
    }
}
