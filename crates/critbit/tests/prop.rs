//! Property tests: both crit-bit variants against a BTreeMap model.

use critbit::{CritBit1, CritBit2};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn key_strategy() -> impl Strategy<Value = [u64; 2]> {
    prop_oneof![
        [0u64..32, 0u64..32],
        [any::<u64>(), any::<u64>()],
        [0u32..64, 0u32..64].prop_map(|k| k.map(|b| 1u64 << b)),
    ]
}

#[derive(Clone, Debug)]
enum Op {
    Insert([u64; 2], u32),
    Remove([u64; 2]),
    Get([u64; 2]),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (key_strategy(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k, v)),
        2 => key_strategy().prop_map(Op::Remove),
        1 => key_strategy().prop_map(Op::Get),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn cb1_and_cb2_match_model(ops in proptest::collection::vec(op_strategy(), 1..150)) {
        let mut c1: CritBit1<u32, 2> = CritBit1::new();
        let mut c2: CritBit2<u32, 2> = CritBit2::new();
        let mut model: BTreeMap<[u64; 2], u32> = BTreeMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    let want = model.insert(k, v);
                    prop_assert_eq!(c1.insert(k, v), want);
                    prop_assert_eq!(c2.insert(k, v), want);
                }
                Op::Remove(k) => {
                    let want = model.remove(&k);
                    prop_assert_eq!(c1.remove(&k), want);
                    prop_assert_eq!(c2.remove(&k), want);
                }
                Op::Get(k) => {
                    prop_assert_eq!(c1.get(&k), model.get(&k));
                    prop_assert_eq!(c2.get(&k), model.get(&k));
                }
            }
            prop_assert_eq!(c1.len(), model.len());
            prop_assert_eq!(c2.len(), model.len());
        }
        // Enumeration returns exactly the model's contents.
        let mut got1 = Vec::new();
        c1.for_each(&mut |k, v| got1.push((*k, *v)));
        got1.sort();
        let mut got2 = Vec::new();
        c2.for_each(&mut |k, v| got2.push((*k, *v)));
        got2.sort();
        let want: Vec<([u64; 2], u32)> = model.into_iter().collect();
        prop_assert_eq!(&got1, &want);
        prop_assert_eq!(&got2, &want);
    }

    /// Crit-bit enumeration order equals interleaved (Morton) key order,
    /// since the trie is a radix tree over the interleaved bit-string.
    #[test]
    fn cb1_enumeration_is_morton_ordered(keys in proptest::collection::btree_set(key_strategy(), 1..80)) {
        let mut c1: CritBit1<(), 2> = CritBit1::new();
        for k in &keys {
            c1.insert(*k, ());
        }
        let mut got = Vec::new();
        c1.for_each(&mut |k, _| got.push(*k));
        fn morton(k: &[u64; 2]) -> Vec<u64> {
            // Compare via interleaved bits, MSB first.
            (0..128).map(|i| critbit::ibit(k, i)).collect()
        }
        let mut want: Vec<[u64; 2]> = keys.iter().copied().collect();
        want.sort_by_key(morton);
        prop_assert_eq!(got, want);
    }
}
