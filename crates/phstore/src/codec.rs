//! Compact value (de)serialisation for stored trees.

/// Encode/decode for values stored alongside keys.
///
/// Implementations must be self-delimiting: `decode` returns the value
/// and the number of bytes consumed, or `None` on malformed input.
///
/// `Clone` is required because stored trees are copy-on-write: writes
/// path-copy nodes shared with published read snapshots, cloning the
/// values held in the copied nodes.
pub trait ValueCodec: Sized + Clone {
    /// Appends the encoded value to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes one value from the front of `buf`.
    fn decode(buf: &[u8]) -> Option<(Self, usize)>;
}

impl ValueCodec for () {
    fn encode(&self, _out: &mut Vec<u8>) {}
    fn decode(_buf: &[u8]) -> Option<((), usize)> {
        Some(((), 0))
    }
}

macro_rules! int_codec {
    ($($t:ty),*) => {$(
        impl ValueCodec for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(buf: &[u8]) -> Option<(Self, usize)> {
                const N: usize = std::mem::size_of::<$t>();
                if buf.len() < N {
                    return None;
                }
                Some((<$t>::from_le_bytes(buf[..N].try_into().unwrap()), N))
            }
        }
    )*};
}

int_codec!(u8, u16, u32, u64, i8, i16, i32, i64);

impl ValueCodec for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn decode(buf: &[u8]) -> Option<(Self, usize)> {
        if buf.len() < 8 {
            return None;
        }
        Some((
            f64::from_bits(u64::from_le_bytes(buf[..8].try_into().unwrap())),
            8,
        ))
    }
}

impl ValueCodec for String {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(buf: &[u8]) -> Option<(Self, usize)> {
        if buf.len() < 4 {
            return None;
        }
        let n = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
        if buf.len() < 4 + n {
            return None;
        }
        let s = std::str::from_utf8(&buf[4..4 + n]).ok()?.to_string();
        Some((s, 4 + n))
    }
}

impl ValueCodec for Vec<u8> {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        out.extend_from_slice(self);
    }
    fn decode(buf: &[u8]) -> Option<(Self, usize)> {
        if buf.len() < 4 {
            return None;
        }
        let n = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
        if buf.len() < 4 + n {
            return None;
        }
        Some((buf[4..4 + n].to_vec(), 4 + n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: ValueCodec + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = vec![0xEE]; // leading noise is not consumed
        let start = buf.len();
        v.encode(&mut buf);
        let (back, used) = T::decode(&buf[start..]).unwrap();
        assert_eq!(back, v);
        assert_eq!(used, buf.len() - start);
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(());
        roundtrip(0u8);
        roundtrip(42u32);
        roundtrip(u64::MAX);
        roundtrip(-123456789i64);
        roundtrip(1.61803398874f64);
        roundtrip(-0.0f64);
        roundtrip(String::from("héllo wörld"));
        roundtrip(String::new());
        roundtrip(vec![1u8, 2, 3]);
        roundtrip(Vec::<u8>::new());
    }

    #[test]
    fn truncated_input_is_rejected() {
        assert!(u64::decode(&[1, 2, 3]).is_none());
        assert!(String::decode(&[5, 0, 0, 0, b'a']).is_none());
        assert!(Vec::<u8>::decode(&[2, 0, 0, 0, 9]).is_none());
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&[0xFF, 0xFE]);
        assert!(String::decode(&buf).is_none());
    }
}
