//! Checked superblock codec shared by every paged file format in the
//! workspace.
//!
//! Both the record store's [`crate::pager::Pager`] (`PHSTORE1`) and the
//! packed read-only tree format (`PHPACK01`, crate `phpack`) start with
//! the same page-0 shape; this module is the single implementation of
//! its encoding, parsing and integrity checks so the two formats cannot
//! drift apart on magic/CRC handling:
//!
//! ```text
//! offset  size  field
//! 0       8     magic (format tag, caller-supplied)
//! 8       8     n_pages, u64 LE (total pages incl. this one)
//! 16      4     meta_len, u32 LE
//! 20      m     meta (format-specific blob, m = meta_len <= MAX_META)
//! 20+m    ...   zero padding
//! 4088    8     FNV-1a over bytes 0..4088, u64 LE
//! ```
//!
//! Decode rejects structurally invalid pages with a typed
//! [`Corruption`] anchored at page 0 — callers get "where and what"
//! without re-deriving offsets.

use crate::error::{Corruption, StoreError};

/// Page size in bytes. 4 KiB, the common disk/OS page granularity the
/// paper's outlook refers to.
pub const PAGE_SIZE: usize = 4096;

/// Magic of the record store's paged files.
pub const STORE_MAGIC: &[u8; 8] = b"PHSTORE1";

/// Magic of packed read-only tree artifacts (crate `phpack`).
pub const PACK_MAGIC: &[u8; 8] = b"PHPACK01";

/// Maximum user metadata bytes storable in a superblock
/// (page minus magic, page count, meta length and checksum).
pub const MAX_META: usize = PAGE_SIZE - 8 - 8 - 4 - 8;

/// Encodes a superblock page: magic, page count, metadata, checksum.
///
/// # Panics
///
/// Panics if `meta` exceeds [`MAX_META`] (a caller bug, not an I/O
/// condition).
pub fn encode(magic: &[u8; 8], n_pages: u64, meta: &[u8]) -> Vec<u8> {
    assert!(meta.len() <= MAX_META, "metadata too large");
    let mut page = vec![0u8; PAGE_SIZE];
    page[..8].copy_from_slice(magic);
    page[8..16].copy_from_slice(&n_pages.to_le_bytes());
    page[16..20].copy_from_slice(&(meta.len() as u32).to_le_bytes());
    page[20..20 + meta.len()].copy_from_slice(meta);
    let sum = crate::fnv1a(&page[..PAGE_SIZE - 8]);
    page[PAGE_SIZE - 8..].copy_from_slice(&sum.to_le_bytes());
    page
}

/// Decodes and verifies a superblock page, returning the stored page
/// count and the metadata blob.
///
/// Callers must still check the returned `n_pages` against the actual
/// file length — the codec can only vouch for internal consistency.
pub fn decode(magic: &[u8; 8], page: &[u8]) -> Result<(u64, Vec<u8>), StoreError> {
    if page.len() != PAGE_SIZE {
        return Err(Corruption::new("superblock is not a full page")
            .at_page(0)
            .at_offset(page.len() as u64)
            .into());
    }
    if &page[..8] != magic {
        return Err(Corruption::new("bad magic").at_page(0).into());
    }
    let stored_sum = u64::from_le_bytes(page[PAGE_SIZE - 8..].try_into().unwrap());
    if stored_sum != crate::fnv1a(&page[..PAGE_SIZE - 8]) {
        return Err(Corruption::new("header checksum mismatch")
            .at_page(0)
            .into());
    }
    let n_pages = u64::from_le_bytes(page[8..16].try_into().unwrap());
    let meta_len = u32::from_le_bytes(page[16..20].try_into().unwrap()) as usize;
    if meta_len > MAX_META {
        return Err(Corruption::new("oversized metadata").at_page(0).into());
    }
    Ok((n_pages, page[20..20 + meta_len].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let page = encode(STORE_MAGIC, 7, b"meta blob");
        let (n, meta) = decode(STORE_MAGIC, &page).unwrap();
        assert_eq!(n, 7);
        assert_eq!(meta, b"meta blob");
    }

    #[test]
    fn wrong_magic_rejected() {
        let page = encode(STORE_MAGIC, 1, b"");
        let err = decode(PACK_MAGIC, &page).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");
    }

    #[test]
    fn every_byte_flip_is_caught() {
        // The codec's whole job: no single corrupted byte may decode
        // cleanly. (Bytes past meta_len are covered by the checksum
        // too.)
        let good = encode(PACK_MAGIC, 3, b"hello");
        assert!(decode(PACK_MAGIC, &good).is_ok());
        for off in 0..PAGE_SIZE {
            let mut page = good.clone();
            page[off] ^= 0x40;
            let err = match decode(PACK_MAGIC, &page) {
                Err(StoreError::Corrupt(c)) => c,
                other => panic!("flip at {off} not rejected as corruption: {other:?}"),
            };
            assert_eq!(err.page, Some(0), "flip at {off} lost page context");
        }
    }

    #[test]
    fn short_page_rejected() {
        let err = decode(STORE_MAGIC, &[0u8; 100]).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(c) if c.page == Some(0)));
    }

    #[test]
    fn max_meta_fits_exactly() {
        let meta = vec![0xAB; MAX_META];
        let page = encode(STORE_MAGIC, 1, &meta);
        let (_, back) = decode(STORE_MAGIC, &page).unwrap();
        assert_eq!(back, meta);
    }
}
