//! Store-wide error type with corruption context.
//!
//! Corruption reports carry *where* the damage was found (record id,
//! page id, byte offset) so a damaged file can be triaged without a hex
//! editor. The `Display` prefix `phstore: corrupt file: {what}` is kept
//! stable; context is appended after it.

use crate::record::RecordId;
use std::io;

/// Location context for a [`StoreError::Corrupt`] report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Corruption {
    /// What check failed.
    pub what: &'static str,
    /// Record being read when the damage was found, if any.
    pub record: Option<RecordId>,
    /// Page id involved, if known.
    pub page: Option<u64>,
    /// Byte offset within the file or frame, if known.
    pub offset: Option<u64>,
}

impl Corruption {
    /// A context-free corruption report.
    pub fn new(what: &'static str) -> Self {
        Corruption {
            what,
            ..Default::default()
        }
    }

    /// Attaches the record being read.
    pub fn at_record(mut self, id: RecordId) -> Self {
        self.record = Some(id);
        self
    }

    /// Attaches the page id.
    pub fn at_page(mut self, page: u64) -> Self {
        self.page = Some(page);
        self
    }

    /// Attaches a byte offset.
    pub fn at_offset(mut self, offset: u64) -> Self {
        self.offset = Some(offset);
        self
    }
}

impl std::fmt::Display for Corruption {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.what)?;
        if let Some(id) = self.record {
            write!(f, " (record {}:{}", id.page, id.slot)?;
        } else if let Some(p) = self.page {
            write!(f, " (page {p}")?;
        }
        match (self.record.is_some() || self.page.is_some(), self.offset) {
            (true, Some(off)) => write!(f, ", offset {off})")?,
            (true, None) => write!(f, ")")?,
            (false, Some(off)) => write!(f, " (offset {off})")?,
            (false, None) => {}
        }
        Ok(())
    }
}

/// Error accessing a stored tree.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The dimension count does not fit the snapshot header.
    TooManyDims {
        /// Requested dimension count `K`.
        dims: usize,
        /// Largest storable dimension count.
        max: usize,
    },
    /// The file is structurally invalid for the requested tree type.
    Corrupt(Corruption),
}

impl StoreError {
    /// Shorthand for a context-free corruption error.
    pub(crate) fn corrupt(what: &'static str) -> Self {
        StoreError::Corrupt(Corruption::new(what))
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<Corruption> for StoreError {
    fn from(c: Corruption) -> Self {
        StoreError::Corrupt(c)
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "phstore: {e}"),
            StoreError::TooManyDims { dims, max } => {
                write!(
                    f,
                    "phstore: {dims} dimensions exceed the storable maximum of {max}"
                )
            }
            StoreError::Corrupt(c) => write!(f, "phstore: corrupt file: {c}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_prefix_is_stable() {
        let e = StoreError::corrupt("bad magic");
        assert_eq!(e.to_string(), "phstore: corrupt file: bad magic");
    }

    #[test]
    fn display_carries_context() {
        let c = Corruption::new("record checksum mismatch")
            .at_record(RecordId { page: 7, slot: 3 })
            .at_offset(123);
        assert_eq!(
            StoreError::from(c).to_string(),
            "phstore: corrupt file: record checksum mismatch (record 7:3, offset 123)"
        );
        let p = Corruption::new("bad page").at_page(9);
        assert_eq!(
            StoreError::from(p).to_string(),
            "phstore: corrupt file: bad page (page 9)"
        );
        let o = Corruption::new("torn frame").at_offset(42);
        assert_eq!(
            StoreError::from(o).to_string(),
            "phstore: corrupt file: torn frame (offset 42)"
        );
    }

    #[test]
    fn too_many_dims_display() {
        let e = StoreError::TooManyDims {
            dims: 300,
            max: 255,
        };
        assert_eq!(
            e.to_string(),
            "phstore: 300 dimensions exceed the storable maximum of 255"
        );
    }
}
