//! Snapshot save/load of a [`PhTree`] as node records in paged storage.
//!
//! Nodes are written post-order (children first), each as one record:
//!
//! ```text
//! [post_len u8][infix_len u8][flags u8: bit0 = HC][reserved u8]
//! [n_subs u32][n_values u32][bits_len u32 (bits)]
//! [bit-string words, LE u64 × ceil(bits_len/64)]
//! [values, ValueCodec-encoded, address order]
//! [child RecordIds, 10 bytes each, address order]
//! ```
//!
//! The header page's metadata records the dimension count, the entry
//! count and the root record id; loading re-validates every structural
//! invariant (via `phtree::raw`), so corrupt or mismatched files yield
//! [`StoreError`]s, never broken trees.

use crate::codec::ValueCodec;
use crate::pager::Pager;
use crate::record::{read_record, RecordId, RecordWriter};
use phtree::raw::{build_node, NodeRef, RawNode};
use phtree::PhTree;
use std::io;
use std::path::Path;

/// Error loading a stored tree.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O or page/record-level corruption.
    Io(io::Error),
    /// The file is structurally invalid for the requested tree type.
    Corrupt(&'static str),
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "phstore: {e}"),
            StoreError::Corrupt(w) => write!(f, "phstore: corrupt file: {w}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Statistics returned by [`save`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaveStats {
    /// Nodes written.
    pub nodes: u64,
    /// Total pages in the file (including the header page).
    pub pages: u64,
    /// Payload bytes across all node records.
    pub payload_bytes: u64,
}

const META_VERSION: u8 = 1;

fn encode_meta(k: usize, len: u64, root: Option<RecordId>) -> Vec<u8> {
    let mut m = Vec::with_capacity(32);
    m.push(META_VERSION);
    m.push(k as u8);
    m.extend_from_slice(&len.to_le_bytes());
    match root {
        None => m.push(0),
        Some(id) => {
            m.push(1);
            id.encode(&mut m);
        }
    }
    m
}

fn decode_meta(k: usize, meta: &[u8]) -> Result<(u64, Option<RecordId>), StoreError> {
    if meta.len() < 11 || meta[0] != META_VERSION {
        return Err(StoreError::Corrupt("bad metadata version"));
    }
    if meta[1] as usize != k {
        return Err(StoreError::Corrupt("dimension count mismatch"));
    }
    let len = u64::from_le_bytes(meta[2..10].try_into().unwrap());
    let root = match meta[10] {
        0 => None,
        1 => {
            let (id, _) =
                RecordId::decode(&meta[11..]).ok_or(StoreError::Corrupt("bad root id"))?;
            Some(id)
        }
        _ => return Err(StoreError::Corrupt("bad root marker")),
    };
    Ok((len, root))
}

fn write_node<V: ValueCodec, const K: usize>(
    w: &mut RecordWriter<'_>,
    node: &NodeRef<'_, V, K>,
) -> io::Result<RecordId> {
    // Children first (post-order) so their ids are known.
    let mut child_ids = Vec::with_capacity(node.subs().len());
    for sub in node.subs() {
        child_ids.push(write_node(w, &sub)?);
    }
    let mut payload = Vec::with_capacity(16 + node.bits_words().len() * 8 + child_ids.len() * 10);
    payload.push(node.post_len());
    payload.push(node.infix_len());
    payload.push(node.is_hc() as u8);
    payload.push(0);
    payload.extend_from_slice(&(child_ids.len() as u32).to_le_bytes());
    payload.extend_from_slice(&(node.values().len() as u32).to_le_bytes());
    payload.extend_from_slice(&(node.bits_len() as u32).to_le_bytes());
    for word in node.bits_words() {
        payload.extend_from_slice(&word.to_le_bytes());
    }
    for v in node.values() {
        v.encode(&mut payload);
    }
    for id in &child_ids {
        id.encode(&mut payload);
    }
    w.append(&payload)
}

fn read_node<V: ValueCodec, const K: usize>(
    pager: &mut Pager,
    id: RecordId,
    depth: usize,
) -> Result<RawNode<V, K>, StoreError> {
    if depth > 64 {
        return Err(StoreError::Corrupt("node chain deeper than w"));
    }
    let buf = read_record(pager, id)?;
    if buf.len() < 16 {
        return Err(StoreError::Corrupt("node record too short"));
    }
    let (post_len, infix_len, is_hc) = (buf[0], buf[1], buf[2] != 0);
    let n_subs = u32::from_le_bytes(buf[4..8].try_into().unwrap()) as usize;
    let n_values = u32::from_le_bytes(buf[8..12].try_into().unwrap()) as usize;
    let bits_len = u32::from_le_bytes(buf[12..16].try_into().unwrap()) as usize;
    let n_words = bits_len.div_ceil(64);
    let mut pos = 16;
    if buf.len() < pos + n_words * 8 {
        return Err(StoreError::Corrupt("bit string truncated"));
    }
    let words: Box<[u64]> = (0..n_words)
        .map(|i| u64::from_le_bytes(buf[pos + i * 8..pos + i * 8 + 8].try_into().unwrap()))
        .collect();
    pos += n_words * 8;
    let mut values = Vec::with_capacity(n_values);
    for _ in 0..n_values {
        let (v, used) =
            V::decode(&buf[pos..]).ok_or(StoreError::Corrupt("value decode failed"))?;
        values.push(v);
        pos += used;
    }
    let mut subs = Vec::with_capacity(n_subs);
    for _ in 0..n_subs {
        let (cid, used) =
            RecordId::decode(&buf[pos..]).ok_or(StoreError::Corrupt("child id truncated"))?;
        pos += used;
        subs.push(read_node(pager, cid, depth + 1)?);
    }
    if pos != buf.len() {
        return Err(StoreError::Corrupt("trailing bytes in node record"));
    }
    build_node(post_len, infix_len, is_hc, words, bits_len, subs, values)
        .ok_or(StoreError::Corrupt("node invariants violated"))
}

/// Saves `tree` as a fresh snapshot at `path` (truncates any existing
/// file).
pub fn save<V: ValueCodec, const K: usize>(
    tree: &PhTree<V, K>,
    path: &Path,
) -> io::Result<SaveStats> {
    assert!(K <= 255, "dimension count must fit the header");
    let mut pager = Pager::create(path, &encode_meta(K, tree.len() as u64, None))?;
    let (root_id, nodes, payload_bytes) = match tree.root_raw() {
        None => (None, 0, 0),
        Some(root) => {
            let mut w = RecordWriter::new(&mut pager)?;
            let id = write_node(&mut w, &root)?;
            let (records, bytes) = (w.records, w.bytes);
            w.finish()?;
            (Some(id), records, bytes)
        }
    };
    pager.write_header(&encode_meta(K, tree.len() as u64, root_id))?;
    pager.sync()?;
    Ok(SaveStats {
        nodes,
        pages: pager.n_pages(),
        payload_bytes,
    })
}

/// Loads a tree previously written by [`save`]. The value type and
/// dimension count must match; everything is re-validated.
pub fn load<V: ValueCodec, const K: usize>(path: &Path) -> Result<PhTree<V, K>, StoreError> {
    let (mut pager, meta) = Pager::open(path)?;
    let (len, root_id) = decode_meta(K, &meta)?;
    let root = match root_id {
        None => None,
        Some(id) => Some(read_node::<V, K>(&mut pager, id, 0)?),
    };
    PhTree::from_raw_parts(root, len as usize)
        .ok_or(StoreError::Corrupt("tree reassembly failed"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("phstore-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample(n: u64) -> PhTree<u64, 3> {
        let mut t = PhTree::new();
        let mut x = 5u64;
        for i in 0..n {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            t.insert([x % 512, (x >> 20) % 512, (x >> 40) % 512], i);
        }
        t
    }

    #[test]
    fn save_load_roundtrip() {
        let path = tmp("store_roundtrip.pht");
        let t = sample(5000);
        let stats = save(&t, &path).unwrap();
        assert_eq!(stats.nodes as usize, t.stats().nodes);
        assert!(stats.pages > 1);
        let u: PhTree<u64, 3> = load(&path).unwrap();
        u.check_invariants();
        assert_eq!(u.len(), t.len());
        let a: Vec<_> = t.iter().collect::<Vec<_>>();
        let b: Vec<_> = u.iter().collect::<Vec<_>>();
        assert_eq!(a.len(), b.len());
        for ((ka, va), (kb, vb)) in a.iter().zip(&b) {
            assert_eq!(ka, kb);
            assert_eq!(va, vb);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_tree_roundtrip() {
        let path = tmp("store_empty.pht");
        let t: PhTree<u64, 3> = PhTree::new();
        save(&t, &path).unwrap();
        let u: PhTree<u64, 3> = load(&path).unwrap();
        assert!(u.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_is_deterministic() {
        let p1 = tmp("store_det1.pht");
        let p2 = tmp("store_det2.pht");
        // Same content, different insertion order → identical snapshot.
        let t1 = sample(2000);
        let mut t2 = PhTree::new();
        let mut entries: Vec<_> = t1.iter().map(|(k, &v)| (k, v)).collect();
        entries.reverse();
        for (k, v) in entries {
            t2.insert(k, v);
        }
        save(&t1, &p1).unwrap();
        save(&t2, &p2).unwrap();
        assert_eq!(std::fs::read(&p1).unwrap(), std::fs::read(&p2).unwrap());
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }

    #[test]
    fn wrong_dimension_is_rejected() {
        let path = tmp("store_wrongk.pht");
        let t = sample(100);
        save(&t, &path).unwrap();
        let r: Result<PhTree<u64, 4>, _> = load(&path);
        assert!(matches!(r, Err(StoreError::Corrupt(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flipped_data_byte_is_detected() {
        use std::io::{Seek, SeekFrom, Write};
        let path = tmp("store_flip.pht");
        let t = sample(3000);
        save(&t, &path).unwrap();
        // Corrupt a stretch of the first data page — with thousands of
        // nodes it is densely packed with record payloads.
        {
            use crate::pager::PAGE_SIZE;
            let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            f.seek(SeekFrom::Start(PAGE_SIZE as u64 + 100)).unwrap();
            f.write_all(&[0xA5; 64]).unwrap();
        }
        let r: Result<PhTree<u64, 3>, _> = load(&path);
        assert!(r.is_err(), "corruption must be detected");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn string_values_roundtrip() {
        let path = tmp("store_strings.pht");
        let mut t: PhTree<String, 2> = PhTree::new();
        for i in 0..500u64 {
            t.insert([i % 29, i / 29], format!("value-{i}"));
        }
        save(&t, &path).unwrap();
        let u: PhTree<String, 2> = load(&path).unwrap();
        assert_eq!(u.get(&[7, 3]), t.get(&[7, 3]));
        assert_eq!(u.len(), t.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unit_values_roundtrip() {
        let path = tmp("store_unit.pht");
        let mut t: PhTree<(), 2> = PhTree::new();
        for i in 0..1000u64 {
            t.insert([i * 31 % 1024, i * 17 % 1024], ());
        }
        save(&t, &path).unwrap();
        let u: PhTree<(), 2> = load(&path).unwrap();
        assert_eq!(u.len(), t.len());
        assert!(u.contains(&[31, 17]));
        std::fs::remove_file(&path).ok();
    }
}
