//! Snapshot save/load of a [`PhTree`] as node records in paged storage.
//!
//! Nodes are written post-order (children first), each as one record:
//!
//! ```text
//! [post_len u8][infix_len u8][flags u8: bit0 = HC][reserved u8]
//! [n_subs u32][n_values u32][bits_len u32 (bits)]
//! [bit-string words, LE u64 × ceil(bits_len/64)]
//! [values, ValueCodec-encoded, address order]
//! [child RecordIds, 10 bytes each, address order]
//! ```
//!
//! The header page's metadata records the dimension count, the entry
//! count, the snapshot *generation* (see [`crate::durable`]) and the
//! root record id; loading re-validates every structural invariant
//! (via `phtree::raw`), so corrupt or mismatched files yield
//! [`StoreError`]s, never broken trees.
//!
//! ## Atomicity
//!
//! [`save`] never modifies the target path in place: the snapshot is
//! written to `<path>.tmp`, synced, then renamed over the target and
//! the parent directory is synced. A crash at any point leaves either
//! the complete old snapshot or the complete new one — never a torn
//! mix, and never a lost old snapshot on an early error.

use crate::codec::ValueCodec;
use crate::error::StoreError;
use crate::pager::Pager;
use crate::record::{read_record, RecordId, RecordWriter};
use crate::vfs::{StdVfs, Vfs};
use phtree::raw::{build_node, NodeRef, RawNode};
use phtree::PhTree;
use std::path::{Path, PathBuf};

pub use crate::error::Corruption;

/// Statistics returned by [`save`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaveStats {
    /// Nodes written.
    pub nodes: u64,
    /// Total pages in the file (including the header page).
    pub pages: u64,
    /// Payload bytes across all node records.
    pub payload_bytes: u64,
}

/// Snapshot metadata format version. Version 2 added the generation
/// number; version-1 files (no generation) are still readable as
/// generation 0.
const META_VERSION: u8 = 2;
const META_VERSION_V1: u8 = 1;

fn encode_meta(k: usize, len: u64, generation: u64, root: Option<RecordId>) -> Vec<u8> {
    let mut m = Vec::with_capacity(40);
    m.push(META_VERSION);
    m.push(k as u8);
    m.extend_from_slice(&len.to_le_bytes());
    m.extend_from_slice(&generation.to_le_bytes());
    match root {
        None => m.push(0),
        Some(id) => {
            m.push(1);
            id.encode(&mut m);
        }
    }
    m
}

fn decode_meta(k: usize, meta: &[u8]) -> Result<(u64, u64, Option<RecordId>), StoreError> {
    let (generation, rest) = match meta.first() {
        Some(&META_VERSION) => {
            if meta.len() < 19 {
                return Err(StoreError::corrupt("metadata truncated"));
            }
            (
                u64::from_le_bytes(meta[10..18].try_into().unwrap()),
                &meta[18..],
            )
        }
        Some(&META_VERSION_V1) => {
            if meta.len() < 11 {
                return Err(StoreError::corrupt("metadata truncated"));
            }
            (0, &meta[10..])
        }
        _ => return Err(StoreError::corrupt("bad metadata version")),
    };
    if meta[1] as usize != k {
        return Err(StoreError::corrupt("dimension count mismatch"));
    }
    let len = u64::from_le_bytes(meta[2..10].try_into().unwrap());
    let root = match rest.first() {
        Some(0) => None,
        Some(1) => {
            let (id, _) = RecordId::decode(&rest[1..]).ok_or(StoreError::corrupt("bad root id"))?;
            Some(id)
        }
        _ => return Err(StoreError::corrupt("bad root marker")),
    };
    Ok((len, generation, root))
}

fn write_node<V: ValueCodec, const K: usize>(
    w: &mut RecordWriter<'_>,
    node: &NodeRef<'_, V, K>,
) -> Result<RecordId, StoreError> {
    // Children first (post-order) so their ids are known.
    let mut child_ids = Vec::with_capacity(node.subs().len());
    for sub in node.subs() {
        child_ids.push(write_node(w, &sub)?);
    }
    let mut payload = Vec::with_capacity(16 + node.bits_words().len() * 8 + child_ids.len() * 10);
    payload.push(node.post_len());
    payload.push(node.infix_len());
    payload.push(node.is_hc() as u8);
    payload.push(0);
    payload.extend_from_slice(&(child_ids.len() as u32).to_le_bytes());
    payload.extend_from_slice(&(node.values().len() as u32).to_le_bytes());
    payload.extend_from_slice(&(node.bits_len() as u32).to_le_bytes());
    for word in node.bits_words() {
        payload.extend_from_slice(&word.to_le_bytes());
    }
    for v in node.values() {
        v.encode(&mut payload);
    }
    for id in &child_ids {
        id.encode(&mut payload);
    }
    w.append(&payload)
}

fn read_node<V: ValueCodec, const K: usize>(
    pager: &mut Pager,
    id: RecordId,
    depth: usize,
) -> Result<RawNode<V, K>, StoreError> {
    if depth > 64 {
        return Err(StoreError::corrupt("node chain deeper than w"));
    }
    let buf = read_record(pager, id)?;
    if buf.len() < 16 {
        return Err(Corruption::new("node record too short")
            .at_record(id)
            .into());
    }
    let (post_len, infix_len, is_hc) = (buf[0], buf[1], buf[2] != 0);
    let n_subs = u32::from_le_bytes(buf[4..8].try_into().unwrap()) as usize;
    let n_values = u32::from_le_bytes(buf[8..12].try_into().unwrap()) as usize;
    let bits_len = u32::from_le_bytes(buf[12..16].try_into().unwrap()) as usize;
    let n_words = bits_len.div_ceil(64);
    let mut pos = 16;
    if buf.len() < pos + n_words * 8 {
        return Err(Corruption::new("bit string truncated").at_record(id).into());
    }
    let words: Box<[u64]> = (0..n_words)
        .map(|i| u64::from_le_bytes(buf[pos + i * 8..pos + i * 8 + 8].try_into().unwrap()))
        .collect();
    pos += n_words * 8;
    let mut values = Vec::with_capacity(n_values);
    for _ in 0..n_values {
        let (v, used) = V::decode(&buf[pos..]).ok_or_else(|| {
            StoreError::from(
                Corruption::new("value decode failed")
                    .at_record(id)
                    .at_offset(pos as u64),
            )
        })?;
        values.push(v);
        pos += used;
    }
    let mut subs = Vec::with_capacity(n_subs);
    for _ in 0..n_subs {
        let (cid, used) = RecordId::decode(&buf[pos..]).ok_or_else(|| {
            StoreError::from(
                Corruption::new("child id truncated")
                    .at_record(id)
                    .at_offset(pos as u64),
            )
        })?;
        pos += used;
        subs.push(read_node(pager, cid, depth + 1)?);
    }
    if pos != buf.len() {
        return Err(Corruption::new("trailing bytes in node record")
            .at_record(id)
            .at_offset(pos as u64)
            .into());
    }
    build_node(post_len, infix_len, is_hc, words, bits_len, subs, values)
        .map_err(|e| Corruption::new(e.what()).at_record(id).into())
}

/// The temp path a snapshot is staged at before the atomic rename.
pub(crate) fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

/// Saves `tree` as a snapshot at `path` on the real filesystem,
/// atomically: temp file, fsync, rename, directory fsync (see the
/// module docs).
pub fn save<V: ValueCodec, const K: usize>(
    tree: &PhTree<V, K>,
    path: &Path,
) -> Result<SaveStats, StoreError> {
    save_with(&StdVfs, tree, path, 0)
}

/// [`save`] on any [`Vfs`], stamping `generation` into the metadata.
pub fn save_with<V: ValueCodec, const K: usize>(
    vfs: &dyn Vfs,
    tree: &PhTree<V, K>,
    path: &Path,
    generation: u64,
) -> Result<SaveStats, StoreError> {
    if K > 255 {
        return Err(StoreError::TooManyDims { dims: K, max: 255 });
    }
    let tmp = tmp_path(path);
    // Stage everything in the temp file; the target is untouched until
    // the rename, so errors here cannot lose the previous snapshot.
    let stats = (|| {
        let mut pager = Pager::create_in(
            vfs,
            &tmp,
            &encode_meta(K, tree.len() as u64, generation, None),
        )?;
        let (root_id, nodes, payload_bytes) = match tree.root_raw() {
            None => (None, 0, 0),
            Some(root) => {
                let mut w = RecordWriter::new(&mut pager)?;
                let id = write_node(&mut w, &root)?;
                let (records, bytes) = (w.records, w.bytes);
                w.finish()?;
                (Some(id), records, bytes)
            }
        };
        pager.write_header(&encode_meta(K, tree.len() as u64, generation, root_id))?;
        pager.sync()?;
        Ok::<_, StoreError>(SaveStats {
            nodes,
            pages: pager.n_pages(),
            payload_bytes,
        })
    })()
    .inspect_err(|_| {
        // Best-effort cleanup of the partial staging file.
        let _ = vfs.remove_file(&tmp);
    })?;
    vfs.rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        vfs.sync_dir(parent)?;
    }
    Ok(stats)
}

/// Loads a tree previously written by [`save`] from the real
/// filesystem. The value type and dimension count must match;
/// everything is re-validated.
pub fn load<V: ValueCodec, const K: usize>(path: &Path) -> Result<PhTree<V, K>, StoreError> {
    load_with(&StdVfs, path).map(|(tree, _gen)| tree)
}

/// [`load`] on any [`Vfs`], also returning the snapshot generation.
pub fn load_with<V: ValueCodec, const K: usize>(
    vfs: &dyn Vfs,
    path: &Path,
) -> Result<(PhTree<V, K>, u64), StoreError> {
    let (mut pager, meta) = Pager::open_in(vfs, path)?;
    let (len, generation, root_id) = decode_meta(K, &meta)?;
    let root = match root_id {
        None => None,
        Some(id) => Some(read_node::<V, K>(&mut pager, id, 0)?),
    };
    let tree = PhTree::from_raw_parts(root, len as usize).map_err(|e| Corruption::new(e.what()))?;
    Ok((tree, generation))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("phstore-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample(n: u64) -> PhTree<u64, 3> {
        let mut t = PhTree::new();
        let mut x = 5u64;
        for i in 0..n {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            t.insert([x % 512, (x >> 20) % 512, (x >> 40) % 512], i);
        }
        t
    }

    #[test]
    fn save_load_roundtrip() {
        let path = tmp("store_roundtrip.pht");
        let t = sample(5000);
        let stats = save(&t, &path).unwrap();
        assert_eq!(stats.nodes as usize, t.stats().nodes);
        assert!(stats.pages > 1);
        let u: PhTree<u64, 3> = load(&path).unwrap();
        u.check_invariants();
        assert_eq!(u.len(), t.len());
        let a: Vec<_> = t.iter().collect::<Vec<_>>();
        let b: Vec<_> = u.iter().collect::<Vec<_>>();
        assert_eq!(a.len(), b.len());
        for ((ka, va), (kb, vb)) in a.iter().zip(&b) {
            assert_eq!(ka, kb);
            assert_eq!(va, vb);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_tree_roundtrip() {
        let path = tmp("store_empty.pht");
        let t: PhTree<u64, 3> = PhTree::new();
        save(&t, &path).unwrap();
        let u: PhTree<u64, 3> = load(&path).unwrap();
        assert!(u.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_is_deterministic() {
        let p1 = tmp("store_det1.pht");
        let p2 = tmp("store_det2.pht");
        // Same content, different insertion order → identical snapshot.
        let t1 = sample(2000);
        let mut t2 = PhTree::new();
        let mut entries: Vec<_> = t1.iter().map(|(k, &v)| (k, v)).collect();
        entries.reverse();
        for (k, v) in entries {
            t2.insert(k, v);
        }
        save(&t1, &p1).unwrap();
        save(&t2, &p2).unwrap();
        assert_eq!(std::fs::read(&p1).unwrap(), std::fs::read(&p2).unwrap());
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }

    #[test]
    fn wrong_dimension_is_rejected() {
        let path = tmp("store_wrongk.pht");
        let t = sample(100);
        save(&t, &path).unwrap();
        let r: Result<PhTree<u64, 4>, _> = load(&path);
        assert!(matches!(r, Err(StoreError::Corrupt(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flipped_data_byte_is_detected() {
        use std::io::{Seek, SeekFrom, Write};
        let path = tmp("store_flip.pht");
        let t = sample(3000);
        save(&t, &path).unwrap();
        // Corrupt a stretch of the first data page — with thousands of
        // nodes it is densely packed with record payloads.
        {
            use crate::pager::PAGE_SIZE;
            let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            f.seek(SeekFrom::Start(PAGE_SIZE as u64 + 100)).unwrap();
            f.write_all(&[0xA5; 64]).unwrap();
        }
        let r: Result<PhTree<u64, 3>, _> = load(&path);
        assert!(r.is_err(), "corruption must be detected");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn string_values_roundtrip() {
        let path = tmp("store_strings.pht");
        let mut t: PhTree<String, 2> = PhTree::new();
        for i in 0..500u64 {
            t.insert([i % 29, i / 29], format!("value-{i}"));
        }
        save(&t, &path).unwrap();
        let u: PhTree<String, 2> = load(&path).unwrap();
        assert_eq!(u.get(&[7, 3]), t.get(&[7, 3]));
        assert_eq!(u.len(), t.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unit_values_roundtrip() {
        let path = tmp("store_unit.pht");
        let mut t: PhTree<(), 2> = PhTree::new();
        for i in 0..1000u64 {
            t.insert([i * 31 % 1024, i * 17 % 1024], ());
        }
        save(&t, &path).unwrap();
        let u: PhTree<(), 2> = load(&path).unwrap();
        assert_eq!(u.len(), t.len());
        assert!(u.contains(&[31, 17]));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn generation_roundtrips_through_metadata() {
        let vfs = MemVfs::new();
        let path = Path::new("/snap/gen.pht");
        let t = sample(200);
        save_with(&vfs, &t, path, 42).unwrap();
        let (u, generation) = load_with::<u64, 3>(&vfs, path).unwrap();
        assert_eq!(generation, 42);
        assert_eq!(u.len(), t.len());
    }

    #[test]
    fn save_error_preserves_previous_snapshot() {
        use crate::vfs::{FaultConfig, FaultVfs};
        use std::sync::Arc;
        let mem = MemVfs::new();
        let path = Path::new("/snap/keep.pht");
        let old = sample(300);
        save_with(&mem, &old, path, 1).unwrap();
        let before = mem.read_file(path).unwrap();
        // A save that crashes mid-write must leave the target intact.
        let faulty = FaultVfs::new(
            Arc::new(mem.clone()),
            FaultConfig {
                write_budget: Some(1000),
                ..Default::default()
            },
        );
        let newer = sample(3000);
        assert!(save_with(&faulty, &newer, path, 2).is_err());
        assert_eq!(mem.read_file(path).unwrap(), before, "old snapshot lost");
        let (u, generation) = load_with::<u64, 3>(&mem, path).unwrap();
        assert_eq!(generation, 1);
        assert_eq!(u.len(), old.len());
    }

    #[test]
    fn save_leaves_no_tmp_behind() {
        let vfs = MemVfs::new();
        let path = Path::new("/snap/clean.pht");
        save_with(&vfs, &sample(100), path, 1).unwrap();
        assert!(vfs.exists(path));
        assert!(
            !vfs.exists(&tmp_path(path)),
            "staging file must be renamed away"
        );
    }
}
