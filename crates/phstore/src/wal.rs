//! Write-ahead log of logical tree mutations.
//!
//! The paper's outlook argues the PH-tree suits persistence because
//! every update touches at most two nodes — so a durable layer need not
//! re-serialise structure per update. We go one step smaller: the WAL
//! journals *logical* ops ([`phtree::Op`]) — a key and maybe a value —
//! and recovery replays them onto the last snapshot. Replay is
//! order-dependent but canonical: the PH-tree reaches the identical
//! structure regardless of how the same content was produced.
//!
//! ## File format
//!
//! Header (24 bytes):
//!
//! ```text
//! [magic b"PHWAL001" (8)][generation u64 LE (8)][fnv1a(magic‖gen) (8)]
//! ```
//!
//! then zero or more frames:
//!
//! ```text
//! [len u32 LE][fnv1a(payload) u64 LE][payload: len bytes]
//! payload = [op u8: 1=Insert 2=Remove][key: K × u64 LE][value: ValueCodec]
//! ```
//!
//! The `generation` ties the log to the snapshot it extends: a log
//! whose generation is older than the snapshot's is stale (its ops are
//! already checkpointed) and is discarded on recovery.
//!
//! ## Torn tails
//!
//! A crash can leave a partial frame at the end of the log (and, on a
//! bit flip, a corrupt frame anywhere). [`recover`] scans frames from
//! the start and stops at the first frame that is truncated, oversized
//! or checksum-mismatched — everything before it is replayable,
//! everything from it on is discarded by truncating the file. A torn
//! tail is an expected artefact of crashing, **never** an error.

use crate::codec::ValueCodec;
use crate::error::{Corruption, StoreError};
use crate::metrics::StoreMetrics;
use crate::vfs::{Vfs, VfsFile};
use phtree::Op;
use std::path::Path;

/// WAL file magic (8 bytes, versioned).
pub const WAL_MAGIC: &[u8; 8] = b"PHWAL001";
/// Header size in bytes: magic + generation + checksum.
pub const WAL_HEADER: u64 = 24;
const FRAME_HEADER: usize = 4 + 8;
/// Upper bound on a single frame payload; anything larger in a length
/// prefix is treated as corruption (stops the scan).
const MAX_FRAME: u32 = 64 * 1024 * 1024;

const OP_INSERT: u8 = 1;
const OP_REMOVE: u8 = 2;

fn header_bytes(generation: u64) -> [u8; WAL_HEADER as usize] {
    let mut h = [0u8; WAL_HEADER as usize];
    h[..8].copy_from_slice(WAL_MAGIC);
    h[8..16].copy_from_slice(&generation.to_le_bytes());
    let sum = crate::fnv1a(&h[..16]);
    h[16..24].copy_from_slice(&sum.to_le_bytes());
    h
}

/// Appends ops to a write-ahead log file.
pub struct WalWriter {
    file: Box<dyn VfsFile>,
    offset: u64,
    sync_writes: bool,
    metrics: StoreMetrics,
}

impl WalWriter {
    /// Creates a fresh log at `path` stamped with `generation` and
    /// syncs the header. Truncates anything previously at `path`.
    pub fn create(
        vfs: &dyn Vfs,
        path: &Path,
        generation: u64,
        sync_writes: bool,
    ) -> Result<WalWriter, StoreError> {
        let mut file = vfs.create(path)?;
        file.write_all_at(&header_bytes(generation), 0)?;
        file.sync_all()?;
        Ok(WalWriter {
            file,
            offset: WAL_HEADER,
            sync_writes,
            metrics: StoreMetrics::disabled(),
        })
    }

    /// Resumes appending to an already-validated log: `file` must hold
    /// a good header and `offset` must point just past the last valid
    /// frame (as reported by [`recover`]).
    pub fn resume(
        mut file: Box<dyn VfsFile>,
        offset: u64,
        sync_writes: bool,
    ) -> Result<WalWriter, StoreError> {
        // Discard any torn tail so new frames start on a clean boundary.
        file.set_len(offset)?;
        Ok(WalWriter {
            file,
            offset,
            sync_writes,
            metrics: StoreMetrics::disabled(),
        })
    }

    /// Wires the writer to record appended frames/bytes and fsync
    /// latency (`phstore_wal_*`).
    pub fn set_metrics(&mut self, metrics: StoreMetrics) {
        self.metrics = metrics;
    }

    /// Bytes in the log so far (header + valid frames).
    pub fn bytes(&self) -> u64 {
        self.offset
    }

    fn append_frame(&mut self, payload: &[u8]) -> Result<(), StoreError> {
        // The WAL phase of a traced request: frame write + (when
        // `sync_writes`) the fsync — the durability cost a slow-query
        // breakdown attributes.
        let _w = phtrace::span(phtrace::Phase::Wal);
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crate::fnv1a(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all_at(&frame, self.offset)?;
        self.metrics.wal_append_frames.inc();
        self.metrics.wal_append_bytes.add(frame.len() as u64);
        if self.sync_writes {
            let t = self.metrics.wal_fsync_ns.start();
            self.file.sync_all()?;
            self.metrics.wal_fsync_ns.finish(t);
        }
        self.offset += frame.len() as u64;
        Ok(())
    }

    /// Journals an insert. Durable (if `sync_writes`) once this returns.
    pub fn append_insert<V: ValueCodec, const K: usize>(
        &mut self,
        key: &[u64; K],
        value: &V,
    ) -> Result<(), StoreError> {
        let mut payload = Vec::with_capacity(1 + K * 8 + 8);
        payload.push(OP_INSERT);
        for d in key {
            payload.extend_from_slice(&d.to_le_bytes());
        }
        value.encode(&mut payload);
        self.append_frame(&payload)
    }

    /// Journals a remove. Durable (if `sync_writes`) once this returns.
    pub fn append_remove<const K: usize>(&mut self, key: &[u64; K]) -> Result<(), StoreError> {
        let mut payload = Vec::with_capacity(1 + K * 8);
        payload.push(OP_REMOVE);
        for d in key {
            payload.extend_from_slice(&d.to_le_bytes());
        }
        self.append_frame(&payload)
    }

    /// Forces buffered frames to stable storage (no-op when every
    /// append already syncs).
    pub fn sync(&mut self) -> Result<(), StoreError> {
        let _w = phtrace::span(phtrace::Phase::Wal);
        let t = self.metrics.wal_fsync_ns.start();
        self.file.sync_all()?;
        self.metrics.wal_fsync_ns.finish(t);
        Ok(())
    }
}

/// Outcome of scanning a WAL file.
pub struct WalRecovery<V, const K: usize> {
    /// Generation from the header, or `None` when the header itself is
    /// missing or damaged (the whole log is then unusable/stale).
    pub generation: Option<u64>,
    /// Ops decoded from the valid frame prefix, in append order.
    pub ops: Vec<Op<V, K>>,
    /// Bytes covered by the header + valid frames; the replay-safe
    /// prefix. Resume appending here after truncating to this length.
    pub valid_bytes: u64,
    /// Total file length found on disk (≥ `valid_bytes`; the gap is the
    /// torn/corrupt tail).
    pub total_bytes: u64,
}

fn decode_payload<V: ValueCodec, const K: usize>(payload: &[u8]) -> Option<Op<V, K>> {
    let (&tag, rest) = payload.split_first()?;
    if rest.len() < K * 8 {
        return None;
    }
    let mut key = [0u64; K];
    for (i, k) in key.iter_mut().enumerate() {
        *k = u64::from_le_bytes(rest[i * 8..i * 8 + 8].try_into().unwrap());
    }
    let rest = &rest[K * 8..];
    match tag {
        OP_INSERT => {
            let (value, used) = V::decode(rest)?;
            if used != rest.len() {
                return None;
            }
            Some(Op::Insert { key, value })
        }
        OP_REMOVE => {
            if !rest.is_empty() {
                return None;
            }
            Some(Op::Remove { key })
        }
        _ => None,
    }
}

/// Scans the log at `path`, decoding the valid frame prefix.
///
/// Torn or corrupt tails are *not* errors — the scan just stops there
/// and reports how far it got. Only real I/O failures (and a missing
/// file) error.
pub fn recover<V: ValueCodec, const K: usize>(
    vfs: &dyn Vfs,
    path: &Path,
) -> Result<WalRecovery<V, K>, StoreError> {
    let mut file = vfs.open(path)?;
    let total_bytes = file.len()?;
    let mut rec = WalRecovery {
        generation: None,
        ops: Vec::new(),
        valid_bytes: 0,
        total_bytes,
    };
    if total_bytes < WAL_HEADER {
        return Ok(rec); // torn before the header finished — stale log
    }
    let mut header = [0u8; WAL_HEADER as usize];
    file.read_exact_at(&mut header, 0)?;
    if &header[..8] != WAL_MAGIC
        || u64::from_le_bytes(header[16..24].try_into().unwrap()) != crate::fnv1a(&header[..16])
    {
        return Ok(rec); // damaged header — stale log
    }
    rec.generation = Some(u64::from_le_bytes(header[8..16].try_into().unwrap()));
    rec.valid_bytes = WAL_HEADER;

    let mut pos = WAL_HEADER;
    loop {
        if pos + FRAME_HEADER as u64 > total_bytes {
            break; // torn inside a frame header
        }
        let mut fh = [0u8; FRAME_HEADER];
        file.read_exact_at(&mut fh, pos)?;
        let len = u32::from_le_bytes(fh[..4].try_into().unwrap());
        let sum = u64::from_le_bytes(fh[4..12].try_into().unwrap());
        if len > MAX_FRAME || pos + FRAME_HEADER as u64 + len as u64 > total_bytes {
            break; // oversized length prefix or torn payload
        }
        let mut payload = vec![0u8; len as usize];
        file.read_exact_at(&mut payload, pos + FRAME_HEADER as u64)?;
        if crate::fnv1a(&payload) != sum {
            break; // bit rot or torn overwrite
        }
        match decode_payload(&payload) {
            Some(op) => rec.ops.push(op),
            None => break, // checksum ok but payload undecodable: stop
        }
        pos += FRAME_HEADER as u64 + len as u64;
        rec.valid_bytes = pos;
    }
    Ok(rec)
}

/// Opens the log at `path` for appending after a [`recover`] scan:
/// truncates the torn tail (if any) and returns a writer positioned at
/// the end of the valid prefix.
pub fn resume_writer(
    vfs: &dyn Vfs,
    path: &Path,
    valid_bytes: u64,
    sync_writes: bool,
) -> Result<WalWriter, StoreError> {
    debug_assert!(valid_bytes >= WAL_HEADER);
    let file = vfs.open(path)?;
    WalWriter::resume(file, valid_bytes, sync_writes)
}

/// Validates a recovered WAL generation against the snapshot's.
///
/// * equal → the log extends the snapshot: replay it.
/// * older (or unreadable header) → stale: already checkpointed,
///   discard.
/// * newer → impossible under the checkpoint protocol (the snapshot is
///   always rotated before the log): the store is corrupt.
pub fn classify_generation(
    wal_gen: Option<u64>,
    snapshot_gen: u64,
) -> Result<WalDisposition, StoreError> {
    match wal_gen {
        Some(g) if g == snapshot_gen => Ok(WalDisposition::Replay),
        Some(g) if g > snapshot_gen => Err(Corruption::new(
            "wal generation newer than snapshot (rotation protocol violated)",
        )
        .into()),
        _ => Ok(WalDisposition::Stale),
    }
}

/// What to do with a recovered log (see [`classify_generation`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalDisposition {
    /// Log matches the snapshot generation: replay its ops.
    Replay,
    /// Log predates the snapshot (or has no readable header): discard.
    Stale,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;

    fn write_sample(vfs: &MemVfs, path: &Path, generation: u64) -> Vec<Op<u32, 2>> {
        let mut w = WalWriter::create(vfs, path, generation, true).unwrap();
        let mut ops = Vec::new();
        for i in 0..50u64 {
            if i % 7 == 3 {
                w.append_remove(&[i, i * 2]).unwrap();
                ops.push(Op::Remove { key: [i, i * 2] });
            } else {
                w.append_insert(&[i, i * 2], &(i as u32)).unwrap();
                ops.push(Op::Insert {
                    key: [i, i * 2],
                    value: i as u32,
                });
            }
        }
        ops
    }

    #[test]
    fn roundtrip_all_frames() {
        let vfs = MemVfs::new();
        let path = Path::new("/wal/log");
        let ops = write_sample(&vfs, path, 7);
        let rec = recover::<u32, 2>(&vfs, path).unwrap();
        assert_eq!(rec.generation, Some(7));
        assert_eq!(rec.ops, ops);
        assert_eq!(rec.valid_bytes, rec.total_bytes);
    }

    #[test]
    fn torn_tail_truncates_cleanly_at_every_cut() {
        let vfs = MemVfs::new();
        let path = Path::new("/wal/log");
        let ops = write_sample(&vfs, path, 1);
        let full = vfs.read_file(path).unwrap();
        // Cut the file at every length: recovery must never error, must
        // report a monotone op count, and valid_bytes must be ≤ cut.
        let mut last_n = 0;
        for cut in 0..=full.len() {
            vfs.write_file(path, full[..cut].to_vec());
            let rec = recover::<u32, 2>(&vfs, path).unwrap();
            assert!(rec.valid_bytes <= cut as u64);
            assert_eq!(rec.total_bytes, cut as u64);
            if cut < WAL_HEADER as usize {
                assert_eq!(rec.generation, None);
            } else {
                assert_eq!(rec.generation, Some(1));
            }
            assert!(rec.ops.len() >= last_n || cut == 0, "op count regressed");
            assert_eq!(rec.ops[..], ops[..rec.ops.len()]);
            last_n = rec.ops.len();
        }
        assert_eq!(last_n, ops.len());
    }

    #[test]
    fn bit_flip_stops_scan_at_flipped_frame() {
        let vfs = MemVfs::new();
        let path = Path::new("/wal/log");
        let ops = write_sample(&vfs, path, 2);
        let full_len = vfs.read_file(path).unwrap().len() as u64;
        // Flip one payload byte somewhere in the middle.
        let mid = WAL_HEADER + (full_len - WAL_HEADER) / 2;
        assert!(vfs.corrupt(path, mid, 0x40));
        let rec = recover::<u32, 2>(&vfs, path).unwrap();
        assert!(rec.ops.len() < ops.len(), "scan must stop early");
        assert_eq!(rec.ops[..], ops[..rec.ops.len()]);
        assert!(rec.valid_bytes <= mid);
        // Resume after truncation and append more: the log is whole again.
        let mut w = resume_writer(&vfs, path, rec.valid_bytes, true).unwrap();
        w.append_insert(&[99, 98], &77u32).unwrap();
        let rec2 = recover::<u32, 2>(&vfs, path).unwrap();
        assert_eq!(rec2.ops.len(), rec.ops.len() + 1);
        assert_eq!(rec2.valid_bytes, rec2.total_bytes);
        assert_eq!(
            rec2.ops.last(),
            Some(&Op::Insert {
                key: [99, 98],
                value: 77u32
            })
        );
    }

    #[test]
    fn damaged_header_is_stale_not_error() {
        let vfs = MemVfs::new();
        let path = Path::new("/wal/log");
        write_sample(&vfs, path, 3);
        vfs.corrupt(path, 3, 0xFF); // inside the magic
        let rec = recover::<u32, 2>(&vfs, path).unwrap();
        assert_eq!(rec.generation, None);
        assert!(rec.ops.is_empty());
        assert_eq!(rec.valid_bytes, 0);
    }

    #[test]
    fn generation_classification() {
        assert_eq!(
            classify_generation(Some(5), 5).unwrap(),
            WalDisposition::Replay
        );
        assert_eq!(
            classify_generation(Some(4), 5).unwrap(),
            WalDisposition::Stale
        );
        assert_eq!(classify_generation(None, 5).unwrap(), WalDisposition::Stale);
        assert!(classify_generation(Some(6), 5).is_err());
    }

    #[test]
    fn oversized_length_prefix_stops_scan() {
        let vfs = MemVfs::new();
        let path = Path::new("/wal/log");
        let mut w = WalWriter::create(&vfs, path, 1, true).unwrap();
        w.append_insert(&[1u64, 2], &9u32).unwrap();
        let good = w.bytes();
        // Append garbage claiming a huge frame.
        let mut f = vfs.open(path).unwrap();
        let mut junk = Vec::new();
        junk.extend_from_slice(&u32::MAX.to_le_bytes());
        junk.extend_from_slice(&[0xABu8; 64]);
        f.write_all_at(&junk, good).unwrap();
        let rec = recover::<u32, 2>(&vfs, path).unwrap();
        assert_eq!(rec.ops.len(), 1);
        assert_eq!(rec.valid_bytes, good);
    }
}
