//! Instrument wiring for the durability layer.
//!
//! Built from a [`phmetrics::Registry`] via
//! [`StoreMetrics::from_registry`] and handed to
//! [`crate::Durable::open_observed`]; stores opened without one carry
//! no-op handles ([`StoreMetrics::disabled`]), so every record call is
//! a branch on a null `Option`.
//!
//! Instrument catalogue (Prometheus names):
//!
//! * `phstore_wal_append_frames_total` / `phstore_wal_append_bytes_total`
//!   — frames and bytes (incl. frame headers) appended to the WAL.
//! * `phstore_wal_fsync_ns` — log₂ histogram of WAL fsync latency
//!   (per-append with `sync_writes`, plus explicit `sync()` calls).
//! * `phstore_checkpoints_total` — checkpoint rotations completed.
//! * `phstore_checkpoint_ns` — histogram of whole-rotation duration
//!   (snapshot write + WAL rotation, both fsynced).
//! * `phstore_checkpoint_bytes_total` — snapshot file bytes written by
//!   checkpoints (pages × page size).
//! * `phstore_recovery_replayed_ops_total` — WAL ops replayed on open.
//! * `phstore_recovery_bulk_replayed_total` — replayed ops that rode
//!   the bulk-load fast path (leading inserts on an empty tree).
//! * `phstore_recovery_torn_tail_truncations_total` /
//!   `phstore_recovery_truncated_bytes_total` — torn/corrupt WAL tails
//!   discarded on open, and their size.
//! * `phstore_recovery_stale_wals_total` — stale (pre-rotation) WALs
//!   discarded wholesale on open.

use phmetrics::{Counter, Histogram, Registry};

/// Every instrument recorded by the durability layer (see the module
/// docs for the catalogue). Cheap to clone; clones share cells.
#[derive(Clone)]
pub struct StoreMetrics {
    pub(crate) wal_append_frames: Counter,
    pub(crate) wal_append_bytes: Counter,
    pub(crate) wal_fsync_ns: Histogram,
    pub(crate) checkpoints: Counter,
    pub(crate) checkpoint_ns: Histogram,
    pub(crate) checkpoint_bytes: Counter,
    pub(crate) recovery_replayed_ops: Counter,
    pub(crate) recovery_bulk_replayed: Counter,
    pub(crate) recovery_truncations: Counter,
    pub(crate) recovery_truncated_bytes: Counter,
    pub(crate) recovery_stale_wals: Counter,
}

impl StoreMetrics {
    /// No-op handles; records nothing.
    pub fn disabled() -> Self {
        StoreMetrics {
            wal_append_frames: Counter::noop(),
            wal_append_bytes: Counter::noop(),
            wal_fsync_ns: Histogram::noop(),
            checkpoints: Counter::noop(),
            checkpoint_ns: Histogram::noop(),
            checkpoint_bytes: Counter::noop(),
            recovery_replayed_ops: Counter::noop(),
            recovery_bulk_replayed: Counter::noop(),
            recovery_truncations: Counter::noop(),
            recovery_truncated_bytes: Counter::noop(),
            recovery_stale_wals: Counter::noop(),
        }
    }

    /// Store instruments registered under `phstore_*`.
    pub fn from_registry(reg: &Registry) -> Self {
        StoreMetrics {
            wal_append_frames: reg.counter("phstore_wal_append_frames_total"),
            wal_append_bytes: reg.counter("phstore_wal_append_bytes_total"),
            wal_fsync_ns: reg.histogram("phstore_wal_fsync_ns"),
            checkpoints: reg.counter("phstore_checkpoints_total"),
            checkpoint_ns: reg.histogram("phstore_checkpoint_ns"),
            checkpoint_bytes: reg.counter("phstore_checkpoint_bytes_total"),
            recovery_replayed_ops: reg.counter("phstore_recovery_replayed_ops_total"),
            recovery_bulk_replayed: reg.counter("phstore_recovery_bulk_replayed_total"),
            recovery_truncations: reg.counter("phstore_recovery_torn_tail_truncations_total"),
            recovery_truncated_bytes: reg.counter("phstore_recovery_truncated_bytes_total"),
            recovery_stale_wals: reg.counter("phstore_recovery_stale_wals_total"),
        }
    }
}
