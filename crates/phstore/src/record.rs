//! Slotted-page record heap.
//!
//! Records (serialised PH-tree nodes) are packed many-per-page; a
//! record that does not fit the remaining space of the current page
//! starts on a fresh page, and a record larger than one page spills
//! into chained *overflow* pages — the paper's "split efficiently to
//! fit into disk-pages". Every record is prefixed with its length and
//! an FNV-1a checksum that is verified on read.
//!
//! Page layout (data pages): records grow upward from the page start,
//! the slot directory grows downward from the page end:
//!
//! ```text
//! [n_slots: u16][records …→]   …   [←… slot offsets: u16 × n_slots]
//! ```
//!
//! Record layout at its slot offset:
//!
//! ```text
//! [total_len: u32][checksum: u64][overflow_page: u64 or 0][payload head]
//! ```
//!
//! `payload head` is as much of the payload as fits in this page; the
//! rest continues in overflow pages of the form `[next: u64][data]`.

use crate::error::{Corruption, StoreError};
use crate::pager::{Pager, PAGE_SIZE};

/// Address of a record: page id + slot index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordId {
    /// Data page holding the record head.
    pub page: u64,
    /// Slot index within the page.
    pub slot: u16,
}

impl RecordId {
    /// Byte encoding used inside other records (10 bytes).
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.page.to_le_bytes());
        out.extend_from_slice(&self.slot.to_le_bytes());
    }

    /// Inverse of [`RecordId::encode`].
    pub fn decode(buf: &[u8]) -> Option<(RecordId, usize)> {
        if buf.len() < 10 {
            return None;
        }
        Some((
            RecordId {
                page: u64::from_le_bytes(buf[..8].try_into().unwrap()),
                slot: u16::from_le_bytes(buf[8..10].try_into().unwrap()),
            },
            10,
        ))
    }
}

const REC_HEADER: usize = 4 + 8 + 8;
const PAGE_HEADER: usize = 2;
const SLOT_BYTES: usize = 2;
const OVERFLOW_HEADER: usize = 8;

/// Append-only record writer over a [`Pager`].
pub struct RecordWriter<'p> {
    pager: &'p mut Pager,
    /// Current open page and its buffered contents.
    page_id: u64,
    page: Vec<u8>,
    n_slots: u16,
    /// First free byte (records grow upward from the slot directory).
    free: usize,
    /// Records written so far.
    pub records: u64,
    /// Payload bytes written so far.
    pub bytes: u64,
}

impl<'p> RecordWriter<'p> {
    /// Starts writing records into fresh pages of `pager`.
    pub fn new(pager: &'p mut Pager) -> Result<Self, StoreError> {
        let page_id = pager.alloc_page()?;
        Ok(RecordWriter {
            pager,
            page_id,
            page: vec![0u8; PAGE_SIZE],
            n_slots: 0,
            free: PAGE_HEADER,
            records: 0,
            bytes: 0,
        })
    }

    /// First byte used by the slot directory given `n_slots` slots.
    fn dir_start(n_slots: u16) -> usize {
        PAGE_SIZE - n_slots as usize * SLOT_BYTES
    }

    fn flush_page(&mut self) -> Result<(), StoreError> {
        self.page[..2].copy_from_slice(&self.n_slots.to_le_bytes());
        self.pager.write_page(self.page_id, &self.page)
    }

    fn fresh_page(&mut self) -> Result<(), StoreError> {
        self.flush_page()?;
        self.page_id = self.pager.alloc_page()?;
        self.page.fill(0);
        self.n_slots = 0;
        self.free = PAGE_HEADER;
        Ok(())
    }

    /// Appends one record, returning its address.
    pub fn append(&mut self, payload: &[u8]) -> Result<RecordId, StoreError> {
        // Usable space: records grow up from `free`, the directory
        // (including the new slot) grows down from the page end.
        let limit = Self::dir_start(self.n_slots + 1);
        if limit < self.free + REC_HEADER {
            self.fresh_page()?;
            return self.append(payload);
        }
        let head_room = limit - self.free - REC_HEADER;
        if head_room == 0 && !payload.is_empty() {
            self.fresh_page()?;
            return self.append(payload);
        }
        let head_take = payload.len().min(head_room);
        // Heuristic: if less than a quarter of the payload fits and the
        // page already has records, start a fresh page instead of
        // fragmenting.
        if self.n_slots > 0 && payload.len() > head_room && head_take < payload.len() / 4 {
            self.fresh_page()?;
            return self.append(payload);
        }

        // Write overflow chain first (back to front) so each page can
        // point at the next.
        let mut overflow_first = 0u64;
        let rest = &payload[head_take..];
        if !rest.is_empty() {
            let per_page = PAGE_SIZE - OVERFLOW_HEADER;
            let n_over = rest.len().div_ceil(per_page);
            let mut next = 0u64;
            for i in (0..n_over).rev() {
                let chunk = &rest[i * per_page..(rest.len()).min((i + 1) * per_page)];
                let id = self.pager.alloc_page()?;
                let mut buf = vec![0u8; PAGE_SIZE];
                buf[..8].copy_from_slice(&next.to_le_bytes());
                buf[8..8 + chunk.len()].copy_from_slice(chunk);
                self.pager.write_page(id, &buf)?;
                next = id;
            }
            overflow_first = next;
        }

        // Slot directory entry (from the page end, downward).
        let off = self.free;
        let slot = self.n_slots;
        let dir_pos = Self::dir_start(slot + 1);
        self.page[dir_pos..dir_pos + 2].copy_from_slice(&(off as u16).to_le_bytes());
        self.n_slots += 1;

        // Record header + payload head.
        let sum = crate::fnv1a(payload);
        self.page[off..off + 4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        self.page[off + 4..off + 12].copy_from_slice(&sum.to_le_bytes());
        self.page[off + 12..off + 20].copy_from_slice(&overflow_first.to_le_bytes());
        self.page[off + 20..off + 20 + head_take].copy_from_slice(&payload[..head_take]);
        self.free = off + REC_HEADER + head_take;
        self.records += 1;
        self.bytes += payload.len() as u64;
        Ok(RecordId {
            page: self.page_id,
            slot,
        })
    }

    /// Flushes the open page; must be called once at the end.
    pub fn finish(mut self) -> Result<(), StoreError> {
        self.flush_page()
    }
}

/// Reads one record from a [`Pager`], verifying its checksum.
pub fn read_record(pager: &mut Pager, id: RecordId) -> Result<Vec<u8>, StoreError> {
    let page = pager.read_page(id.page)?;
    let n_slots = u16::from_le_bytes(page[..2].try_into().unwrap());
    if id.slot >= n_slots {
        return Err(Corruption::new("slot out of range").at_record(id).into());
    }
    let dir_pos = PAGE_SIZE - (id.slot as usize + 1) * SLOT_BYTES;
    let off = u16::from_le_bytes(page[dir_pos..dir_pos + 2].try_into().unwrap()) as usize;
    if off + REC_HEADER > PAGE_SIZE - (n_slots as usize) * SLOT_BYTES {
        return Err(Corruption::new("record offset out of range")
            .at_record(id)
            .at_offset(off as u64)
            .into());
    }
    let total = u32::from_le_bytes(page[off..off + 4].try_into().unwrap()) as usize;
    let sum = u64::from_le_bytes(page[off + 4..off + 12].try_into().unwrap());
    let mut overflow = u64::from_le_bytes(page[off + 12..off + 20].try_into().unwrap());
    let head_take = total.min(PAGE_SIZE - (n_slots as usize) * SLOT_BYTES - off - REC_HEADER);
    let mut payload = Vec::with_capacity(total);
    payload.extend_from_slice(&page[off + 20..off + 20 + head_take]);
    while payload.len() < total {
        if overflow == 0 {
            return Err(Corruption::new("record truncated (missing overflow)")
                .at_record(id)
                .into());
        }
        let buf = pager.read_page(overflow)?;
        let next = u64::from_le_bytes(buf[..8].try_into().unwrap());
        let want = (total - payload.len()).min(PAGE_SIZE - OVERFLOW_HEADER);
        payload.extend_from_slice(&buf[8..8 + want]);
        overflow = next;
    }
    if crate::fnv1a(&payload) != sum {
        return Err(Corruption::new("record checksum mismatch")
            .at_record(id)
            .into());
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::Pager;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("phstore-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn many_small_records_share_pages() {
        let path = tmp("rec_small.pht");
        let mut p = Pager::create(&path, b"").unwrap();
        let mut ids = Vec::new();
        {
            let mut w = RecordWriter::new(&mut p).unwrap();
            for i in 0..500u32 {
                ids.push((i, w.append(&i.to_le_bytes()).unwrap()));
            }
            w.finish().unwrap();
        }
        // 500 × (4-byte payload + 20-byte header + 2-byte slot) ≈ 13 KiB
        // → a handful of pages, not 500.
        assert!(p.n_pages() < 10, "pages: {}", p.n_pages());
        for (i, id) in ids {
            assert_eq!(read_record(&mut p, id).unwrap(), i.to_le_bytes());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn large_record_spills_into_overflow_chain() {
        let path = tmp("rec_large.pht");
        let mut p = Pager::create(&path, b"").unwrap();
        let big: Vec<u8> = (0..3 * PAGE_SIZE + 123).map(|i| (i * 7) as u8).collect();
        let small = b"tiny".to_vec();
        let (id_small, id_big, id_small2);
        {
            let mut w = RecordWriter::new(&mut p).unwrap();
            id_small = w.append(&small).unwrap();
            id_big = w.append(&big).unwrap();
            id_small2 = w.append(&small).unwrap();
            w.finish().unwrap();
        }
        assert_eq!(read_record(&mut p, id_small).unwrap(), small);
        assert_eq!(read_record(&mut p, id_big).unwrap(), big);
        assert_eq!(read_record(&mut p, id_small2).unwrap(), small);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn random_sizes_roundtrip() {
        let path = tmp("rec_rand.pht");
        let mut p = Pager::create(&path, b"").unwrap();
        let mut x = 7u64;
        let mut recs = Vec::new();
        {
            let mut w = RecordWriter::new(&mut p).unwrap();
            for _ in 0..200 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let len = (x % 9000) as usize;
                let data: Vec<u8> = (0..len).map(|i| (i as u64 ^ x) as u8).collect();
                let id = w.append(&data).unwrap();
                recs.push((data, id));
            }
            w.finish().unwrap();
        }
        for (data, id) in recs {
            assert_eq!(read_record(&mut p, id).unwrap(), data, "record {id:?}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_record() {
        let path = tmp("rec_empty.pht");
        let mut p = Pager::create(&path, b"").unwrap();
        let id;
        {
            let mut w = RecordWriter::new(&mut p).unwrap();
            id = w.append(&[]).unwrap();
            w.finish().unwrap();
        }
        assert_eq!(read_record(&mut p, id).unwrap(), Vec::<u8>::new());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flipped_byte_is_detected() {
        use std::io::{Seek, SeekFrom, Write};
        let path = tmp("rec_flip.pht");
        let mut p = Pager::create(&path, b"").unwrap();
        let id;
        {
            let mut w = RecordWriter::new(&mut p).unwrap();
            id = w.append(&[42u8; 100]).unwrap();
            w.finish().unwrap();
        }
        p.write_header(b"").unwrap();
        drop(p);
        {
            let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            // Flip a payload byte in the first data page (page 1).
            f.seek(SeekFrom::Start(PAGE_SIZE as u64 + 60)).unwrap();
            f.write_all(&[0xFF]).unwrap();
        }
        // Reopen bypassing the header check is impossible, so rebuild a
        // pager around the file by recreating the header checksum? No —
        // the header page is untouched, only a data page changed.
        let (mut p, _) = Pager::open(&path).unwrap();
        assert!(read_record(&mut p, id).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn record_id_encoding_roundtrip() {
        let id = RecordId {
            page: 0xDEAD_BEEF,
            slot: 513,
        };
        let mut buf = Vec::new();
        id.encode(&mut buf);
        assert_eq!(buf.len(), 10);
        let (back, used) = RecordId::decode(&buf).unwrap();
        assert_eq!(back, id);
        assert_eq!(used, 10);
        assert!(RecordId::decode(&buf[..9]).is_none());
    }
}
