//! Crash-safe durable PH-tree: snapshot + write-ahead log.
//!
//! [`Durable`] owns a [`PhTree`] and journals every mutation to a WAL
//! before applying it, checkpointing to a fresh snapshot once the log
//! grows past a threshold. After a crash at *any* byte of the write
//! stream, [`Durable::open`] recovers a tree containing exactly a
//! prefix of the acknowledged operations — and every operation whose
//! journal write returned `Ok` (with [`DurableConfig::sync_writes`] on)
//! survives.
//!
//! ## Directory layout
//!
//! ```text
//! <dir>/snapshot.pht       last checkpoint (generation g)
//! <dir>/wal.log            ops since that checkpoint (stamped g)
//! <dir>/snapshot.pht.tmp   staging file, exists only mid-rotation
//! <dir>/wal.log.tmp        staging file, exists only mid-rotation
//! ```
//!
//! ## Checkpoint rotation protocol
//!
//! 1. Write the full tree to `snapshot.pht.tmp` stamped generation
//!    `g+1`; fsync; rename over `snapshot.pht`; fsync the directory.
//! 2. Write a fresh WAL header stamped `g+1` to `wal.log.tmp`; fsync;
//!    rename over `wal.log`; fsync the directory.
//!
//! Recovery compares the two generations: equal means the log extends
//! the snapshot (replay it); an older or headerless log is a remnant of
//! a crash inside the rotation window — its ops are already in the
//! snapshot, so it is discarded. A log *newer* than the snapshot is
//! impossible (step 1 strictly precedes step 2) and reported as
//! corruption. Every crash point therefore lands in a recoverable
//! state, which `tests/crash.rs` verifies by brute force: it replays
//! the recovery after cutting the write stream at every single byte.

use crate::codec::ValueCodec;
use crate::error::StoreError;
use crate::metrics::StoreMetrics;
use crate::retry::{RetryPolicy, RetryVfs};
use crate::store::{load_with, save_with, tmp_path};
use crate::vfs::{StdVfs, Vfs};
use crate::wal::{self, WalDisposition, WalWriter};
use phtree::{Iter, PhTree};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Snapshot file name inside a [`Durable`] directory.
pub const SNAPSHOT_FILE: &str = "snapshot.pht";
/// WAL file name inside a [`Durable`] directory.
pub const WAL_FILE: &str = "wal.log";

/// Directory for one shard of a sharded durable store: `base/shard-NNN`.
///
/// Keeping each shard's snapshot + WAL in its own subdirectory lets a
/// sharding layer (phshard's `DurableSharded`) journal shards
/// independently and recover them in parallel. Zero-padded so listings
/// sort in shard order.
pub fn shard_dir(base: &Path, shard: usize) -> PathBuf {
    base.join(format!("shard-{shard:03}"))
}

/// Tuning knobs for [`Durable`].
#[derive(Debug, Clone)]
pub struct DurableConfig {
    /// Checkpoint (snapshot + log rotation) once the WAL exceeds this
    /// many bytes. Default 1 MiB.
    pub checkpoint_bytes: u64,
    /// Fsync the WAL on every append. Default `true`; turning it off
    /// trades the "every acknowledged op survives" guarantee for
    /// throughput (recovery is still prefix-consistent).
    pub sync_writes: bool,
    /// When set, wrap the VFS in a [`RetryVfs`] so transient
    /// sync/rename failures (`EINTR`-shaped: `Interrupted`,
    /// `WouldBlock`, `TimedOut`) are retried with bounded exponential
    /// backoff instead of surfacing as store errors. Permanent failures
    /// — including fault-injected crashes — still surface immediately.
    /// Default `None` (no retry layer).
    pub retry: Option<RetryPolicy>,
}

impl Default for DurableConfig {
    fn default() -> Self {
        DurableConfig {
            checkpoint_bytes: 1 << 20,
            sync_writes: true,
            retry: None,
        }
    }
}

/// What [`Durable::open`] found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryStats {
    /// Generation of the snapshot the store resumed from.
    pub generation: u64,
    /// Ops replayed from the WAL onto the snapshot.
    pub replayed_ops: usize,
    /// Of the replayed ops, how many rode the bulk-load fast path
    /// (leading inserts replayed onto an empty tree via the O(n)
    /// bottom-up builder).
    pub bulk_replayed: usize,
    /// Torn/corrupt WAL tail bytes discarded.
    pub truncated_bytes: u64,
    /// Whether a stale WAL (older generation — crash mid-rotation) was
    /// discarded wholesale.
    pub reset_stale_wal: bool,
}

/// A crash-safe [`PhTree`]: every mutation is journaled before it is
/// applied, and checkpoints rotate atomically.
pub struct Durable<V: ValueCodec, const K: usize> {
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
    tree: PhTree<V, K>,
    wal: WalWriter,
    generation: u64,
    config: DurableConfig,
    recovery: RecoveryStats,
    metrics: StoreMetrics,
}

impl<V: ValueCodec, const K: usize> Durable<V, K> {
    /// Opens (or initialises) a durable tree in `dir` on the real
    /// filesystem with default tuning.
    pub fn open(dir: &Path) -> Result<Self, StoreError> {
        Self::open_with(Arc::new(StdVfs), dir, DurableConfig::default())
    }

    /// Opens (or initialises) a durable tree in `dir` on any [`Vfs`].
    ///
    /// Runs full crash recovery: removes staging remnants, loads the
    /// last snapshot (creating an empty generation-0 one on first
    /// open), replays the WAL's valid prefix and truncates its torn
    /// tail, or discards a stale WAL left by a crash mid-rotation.
    pub fn open_with(
        vfs: Arc<dyn Vfs>,
        dir: &Path,
        config: DurableConfig,
    ) -> Result<Self, StoreError> {
        Self::open_observed(vfs, dir, config, StoreMetrics::disabled())
    }

    /// [`Durable::open_with`] wired to record into `metrics` (build one
    /// with [`StoreMetrics::from_registry`]): WAL append volume and
    /// fsync latency, checkpoint count/duration/bytes, and this open's
    /// recovery telemetry (ops replayed — bulk fast-path ops broken out
    /// — torn-tail truncations, stale-WAL discards).
    pub fn open_observed(
        vfs: Arc<dyn Vfs>,
        dir: &Path,
        config: DurableConfig,
        metrics: StoreMetrics,
    ) -> Result<Self, StoreError> {
        let vfs: Arc<dyn Vfs> = match &config.retry {
            Some(policy) => Arc::new(RetryVfs::new(vfs, policy.clone())),
            None => vfs,
        };
        vfs.create_dir_all(dir)?;
        let snap = dir.join(SNAPSHOT_FILE);
        let wal_path = dir.join(WAL_FILE);

        // Staging files are only ever pre-rename leftovers of a crashed
        // rotation; their content is unreferenced.
        for stale in [tmp_path(&snap), tmp_path(&wal_path)] {
            if vfs.exists(&stale) {
                let _ = vfs.remove_file(&stale);
            }
        }

        let mut recovery = RecoveryStats::default();

        // Load (or initialise) the checkpoint.
        let (mut tree, generation) = if vfs.exists(&snap) {
            load_with::<V, K>(vfs.as_ref(), &snap)?
        } else {
            let empty: PhTree<V, K> = PhTree::new();
            save_with(vfs.as_ref(), &empty, &snap, 0)?;
            (empty, 0)
        };
        recovery.generation = generation;

        // Reconcile the WAL with the checkpoint.
        let mut wal = if vfs.exists(&wal_path) {
            let rec = wal::recover::<V, K>(vfs.as_ref(), &wal_path)?;
            match wal::classify_generation(rec.generation, generation)? {
                WalDisposition::Replay => {
                    let replay = tree.replay_stats(rec.ops);
                    recovery.replayed_ops = replay.applied;
                    recovery.bulk_replayed = replay.bulk_loaded;
                    recovery.truncated_bytes = rec.total_bytes - rec.valid_bytes;
                    wal::resume_writer(
                        vfs.as_ref(),
                        &wal_path,
                        rec.valid_bytes,
                        config.sync_writes,
                    )?
                }
                WalDisposition::Stale => {
                    recovery.reset_stale_wal = true;
                    Self::fresh_wal(vfs.as_ref(), &wal_path, generation, &config)?
                }
            }
        } else {
            Self::fresh_wal(vfs.as_ref(), &wal_path, generation, &config)?
        };
        wal.set_metrics(metrics.clone());

        metrics
            .recovery_replayed_ops
            .add(recovery.replayed_ops as u64);
        metrics
            .recovery_bulk_replayed
            .add(recovery.bulk_replayed as u64);
        if recovery.truncated_bytes > 0 {
            metrics.recovery_truncations.inc();
            metrics
                .recovery_truncated_bytes
                .add(recovery.truncated_bytes);
        }
        if recovery.reset_stale_wal {
            metrics.recovery_stale_wals.inc();
        }

        Ok(Durable {
            vfs,
            dir: dir.to_path_buf(),
            tree,
            wal,
            generation,
            config,
            recovery,
            metrics,
        })
    }

    /// Writes a fresh empty WAL for `generation`, atomically (staging
    /// file + rename), so a crash mid-write cannot leave a half-written
    /// header where a valid log used to be.
    fn fresh_wal(
        vfs: &dyn Vfs,
        wal_path: &Path,
        generation: u64,
        config: &DurableConfig,
    ) -> Result<WalWriter, StoreError> {
        let staging = tmp_path(wal_path);
        let writer = WalWriter::create(vfs, &staging, generation, config.sync_writes)?;
        vfs.rename(&staging, wal_path)?;
        if let Some(parent) = wal_path.parent() {
            vfs.sync_dir(parent)?;
        }
        // The handle tracks the file content, not the path (POSIX
        // semantics on StdVfs and MemVfs alike), so it stays valid
        // across the rename.
        Ok(writer)
    }

    /// Creates a *new* durable store in `dir` seeded from an
    /// already-built tree — the migration path for shard splits: the
    /// child tree is assembled in memory (e.g. via
    /// [`PhTree::bulk_load`]) and persisted here as a generation-0
    /// snapshot plus a fresh empty WAL, both written atomically
    /// (staging file + fsync + rename + directory fsync).
    ///
    /// Any existing files in `dir` are overwritten, which makes crashed
    /// and rolled-back migrations idempotent: re-running the split
    /// rebuilds the child from scratch.
    pub fn create_with_tree(
        vfs: Arc<dyn Vfs>,
        dir: &Path,
        tree: PhTree<V, K>,
        config: DurableConfig,
    ) -> Result<Self, StoreError> {
        let vfs: Arc<dyn Vfs> = match &config.retry {
            Some(policy) => Arc::new(RetryVfs::new(vfs, policy.clone())),
            None => vfs,
        };
        vfs.create_dir_all(dir)?;
        let snap = dir.join(SNAPSHOT_FILE);
        save_with(vfs.as_ref(), &tree, &snap, 0)?;
        let mut wal = Self::fresh_wal(vfs.as_ref(), &dir.join(WAL_FILE), 0, &config)?;
        let metrics = StoreMetrics::disabled();
        wal.set_metrics(metrics.clone());
        Ok(Durable {
            vfs,
            dir: dir.to_path_buf(),
            tree,
            wal,
            generation: 0,
            config,
            recovery: RecoveryStats::default(),
            metrics,
        })
    }

    /// Inserts `key` → `value`, journaling first. When this returns
    /// `Ok`, the op survives any subsequent crash (with
    /// [`DurableConfig::sync_writes`] on).
    pub fn insert(&mut self, key: [u64; K], value: V) -> Result<Option<V>, StoreError> {
        self.wal.append_insert(&key, &value)?;
        let prev = self.tree.insert(key, value);
        self.maybe_checkpoint()?;
        Ok(prev)
    }

    /// Removes `key`, journaling first (same durability contract as
    /// [`Durable::insert`]).
    pub fn remove(&mut self, key: &[u64; K]) -> Result<Option<V>, StoreError> {
        self.wal.append_remove(key)?;
        let prev = self.tree.remove(key);
        self.maybe_checkpoint()?;
        Ok(prev)
    }

    fn maybe_checkpoint(&mut self) -> Result<(), StoreError> {
        if self.wal.bytes() >= self.config.checkpoint_bytes {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Forces a checkpoint now: snapshots the tree at generation
    /// `g + 1` and rotates the WAL (see the module docs for the crash
    /// windows). Returns the new generation.
    pub fn checkpoint(&mut self) -> Result<u64, StoreError> {
        let t = self.metrics.checkpoint_ns.start();
        let snap = self.dir.join(SNAPSHOT_FILE);
        let next = self.generation + 1;
        let stats = save_with(self.vfs.as_ref(), &self.tree, &snap, next)?;
        self.wal = Self::fresh_wal(
            self.vfs.as_ref(),
            &self.dir.join(WAL_FILE),
            next,
            &self.config,
        )?;
        self.wal.set_metrics(self.metrics.clone());
        self.generation = next;
        self.metrics.checkpoints.inc();
        self.metrics
            .checkpoint_bytes
            .add(stats.pages * crate::pager::PAGE_SIZE as u64);
        self.metrics.checkpoint_ns.finish(t);
        Ok(next)
    }

    /// Flushes journal buffers to stable storage (useful with
    /// `sync_writes` off).
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.wal.sync()
    }

    /// Looks up a key.
    pub fn get(&self, key: &[u64; K]) -> Option<&V> {
        self.tree.get(key)
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &[u64; K]) -> bool {
        self.tree.contains(key)
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Iterates all entries in key order.
    pub fn iter(&self) -> Iter<'_, V, K> {
        self.tree.iter()
    }

    /// The underlying in-memory tree (for queries, kNN, stats, …).
    pub fn tree(&self) -> &PhTree<V, K> {
        &self.tree
    }

    /// Current checkpoint generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Current WAL size in bytes (header + frames).
    pub fn wal_bytes(&self) -> u64 {
        self.wal.bytes()
    }

    /// What the opening recovery found and did.
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.recovery
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;

    fn mem_open(vfs: &MemVfs, checkpoint_bytes: u64) -> Durable<u32, 2> {
        Durable::open_with(
            Arc::new(vfs.clone()),
            Path::new("/db"),
            DurableConfig {
                checkpoint_bytes,
                sync_writes: true,
                retry: None,
            },
        )
        .unwrap()
    }

    #[test]
    fn fresh_open_initialises_generation_zero() {
        let vfs = MemVfs::new();
        let d = mem_open(&vfs, 1 << 20);
        assert_eq!(d.generation(), 0);
        assert!(d.is_empty());
        assert_eq!(d.recovery_stats(), RecoveryStats::default());
        assert!(vfs.exists(Path::new("/db/snapshot.pht")));
        assert!(vfs.exists(Path::new("/db/wal.log")));
    }

    #[test]
    fn reopen_replays_journal() {
        let vfs = MemVfs::new();
        {
            let mut d = mem_open(&vfs, 1 << 20);
            for i in 0..100u64 {
                d.insert([i, i * 3], i as u32).unwrap();
            }
            d.remove(&[4, 12]).unwrap();
        } // dropped without checkpoint — everything lives in the WAL
        let d = mem_open(&vfs, 1 << 20);
        assert_eq!(d.recovery_stats().replayed_ops, 101);
        assert_eq!(d.len(), 99);
        assert_eq!(d.get(&[7, 21]), Some(&7));
        assert_eq!(d.get(&[4, 12]), None);
        d.tree().check_invariants();
    }

    #[test]
    fn checkpoint_rotates_generation_and_truncates_wal() {
        let vfs = MemVfs::new();
        let mut d = mem_open(&vfs, 1 << 20);
        for i in 0..50u64 {
            d.insert([i, i], i as u32).unwrap();
        }
        let pre = d.wal_bytes();
        assert!(pre > wal::WAL_HEADER);
        assert_eq!(d.checkpoint().unwrap(), 1);
        assert_eq!(d.generation(), 1);
        assert_eq!(d.wal_bytes(), wal::WAL_HEADER);
        // More writes land in the new log; reopen sees both halves.
        d.insert([99, 99], 1234).unwrap();
        drop(d);
        let d = mem_open(&vfs, 1 << 20);
        assert_eq!(d.generation(), 1);
        assert_eq!(d.recovery_stats().replayed_ops, 1);
        assert_eq!(d.len(), 51);
        assert_eq!(d.get(&[99, 99]), Some(&1234));
    }

    #[test]
    fn auto_checkpoint_fires_past_threshold() {
        let vfs = MemVfs::new();
        let mut d = mem_open(&vfs, 600); // tiny: a few ops per generation
        for i in 0..200u64 {
            d.insert([i, i + 1], i as u32).unwrap();
        }
        assert!(d.generation() > 5, "generation: {}", d.generation());
        drop(d);
        let d = mem_open(&vfs, 600);
        assert_eq!(d.len(), 200);
        d.tree().check_invariants();
        for i in 0..200u64 {
            assert_eq!(d.get(&[i, i + 1]), Some(&(i as u32)));
        }
    }

    #[test]
    fn overwrites_and_removes_replay_in_order() {
        let vfs = MemVfs::new();
        {
            let mut d = mem_open(&vfs, 1 << 20);
            assert_eq!(d.insert([1, 2], 10).unwrap(), None);
            assert_eq!(d.insert([1, 2], 20).unwrap(), Some(10));
            assert_eq!(d.remove(&[1, 2]).unwrap(), Some(20));
            assert_eq!(d.insert([1, 2], 30).unwrap(), None);
        }
        let d = mem_open(&vfs, 1 << 20);
        assert_eq!(d.get(&[1, 2]), Some(&30));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn stale_tmp_files_are_cleaned_up() {
        let vfs = MemVfs::new();
        vfs.write_file(Path::new("/db/snapshot.pht.tmp"), vec![1, 2, 3]);
        vfs.write_file(Path::new("/db/wal.log.tmp"), vec![4, 5]);
        let mut d = mem_open(&vfs, 1 << 20);
        d.insert([1, 1], 1).unwrap();
        d.checkpoint().unwrap();
        assert!(!vfs.exists(Path::new("/db/snapshot.pht.tmp")));
        assert!(!vfs.exists(Path::new("/db/wal.log.tmp")));
    }

    #[test]
    fn create_with_tree_seeds_generation_zero_and_reopens() {
        let vfs = MemVfs::new();
        let mut tree: PhTree<u32, 2> = PhTree::new();
        for i in 0..64u64 {
            tree.insert([i, i * 2], i as u32);
        }
        let mut d = Durable::create_with_tree(
            Arc::new(vfs.clone()),
            Path::new("/child"),
            tree,
            DurableConfig::default(),
        )
        .unwrap();
        assert_eq!(d.generation(), 0);
        assert_eq!(d.len(), 64);
        // The seeded store journals further writes like any other.
        d.insert([500, 500], 99).unwrap();
        drop(d);
        let d: Durable<u32, 2> = Durable::open_with(
            Arc::new(vfs.clone()),
            Path::new("/child"),
            DurableConfig::default(),
        )
        .unwrap();
        assert_eq!(d.len(), 65);
        assert_eq!(d.get(&[500, 500]), Some(&99));
        assert_eq!(d.get(&[3, 6]), Some(&3));
        d.tree().check_invariants();
    }

    #[test]
    fn create_with_tree_truncates_previous_contents() {
        let vfs = MemVfs::new();
        let mut old: PhTree<u32, 2> = PhTree::new();
        old.insert([1, 1], 1);
        drop(Durable::create_with_tree(
            Arc::new(vfs.clone()),
            Path::new("/c"),
            old,
            DurableConfig::default(),
        ));
        let mut fresh: PhTree<u32, 2> = PhTree::new();
        fresh.insert([2, 2], 2);
        drop(Durable::create_with_tree(
            Arc::new(vfs.clone()),
            Path::new("/c"),
            fresh,
            DurableConfig::default(),
        ));
        let d: Durable<u32, 2> =
            Durable::open_with(Arc::new(vfs), Path::new("/c"), DurableConfig::default()).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d.get(&[2, 2]), Some(&2));
        assert_eq!(d.get(&[1, 1]), None, "old contents must be gone");
    }

    #[test]
    fn retry_config_wraps_vfs_transparently() {
        let vfs = MemVfs::new();
        let cfg = DurableConfig {
            retry: Some(crate::retry::RetryPolicy::default()),
            ..Default::default()
        };
        let mut d: Durable<u32, 2> =
            Durable::open_with(Arc::new(vfs.clone()), Path::new("/db"), cfg.clone()).unwrap();
        for i in 0..32u64 {
            d.insert([i, i], i as u32).unwrap();
        }
        d.checkpoint().unwrap();
        drop(d);
        let d: Durable<u32, 2> = Durable::open_with(Arc::new(vfs), Path::new("/db"), cfg).unwrap();
        assert_eq!(d.len(), 32);
    }

    #[test]
    fn std_vfs_roundtrip_on_real_filesystem() {
        let dir = std::env::temp_dir().join("phstore-durable-std");
        std::fs::remove_dir_all(&dir).ok();
        {
            let mut d: Durable<u32, 2> = Durable::open(&dir).unwrap();
            for i in 0..64u64 {
                d.insert([i, 63 - i], i as u32).unwrap();
            }
            d.checkpoint().unwrap();
            d.insert([1000, 1000], 7).unwrap();
        }
        let d: Durable<u32, 2> = Durable::open(&dir).unwrap();
        assert_eq!(d.generation(), 1);
        assert_eq!(d.len(), 65);
        assert_eq!(d.get(&[1000, 1000]), Some(&7));
        d.tree().check_invariants();
        std::fs::remove_dir_all(&dir).ok();
    }
}
