//! Paged persistent storage for the PH-tree.
//!
//! The paper argues (Sect. 1 and the outlook) that the PH-tree suits
//! persistent storage: each node's data is one packed bit string that
//! "can be split efficiently to fit into disk-pages", and every update
//! touches at most two nodes — at most two page neighbourhoods. This
//! crate implements that storage layer as a snapshot format:
//!
//! * [`pager`] — a fixed-size-page file substrate (4 KiB pages, a
//!   checksummed header page, sequential allocation).
//! * [`record`] — a slotted-page record heap on top of the pager: many
//!   small node records share a page; records larger than a page spill
//!   into chained overflow pages ("split to fit into disk-pages").
//!   Every record carries an FNV-1a checksum, verified on read.
//! * [`codec`] — compact value (de)serialisation for common types.
//! * [`save`]/[`load`] — persist a [`phtree::PhTree`] node by node
//!   (post-order, children before parents) and rebuild it with full
//!   structural re-validation; corrupt files yield errors, never broken
//!   trees. Saves are atomic: staging file, fsync, rename, directory
//!   fsync.
//! * [`wal`] — a write-ahead log of logical ops (checksummed,
//!   generation-stamped frames) whose recovery scan stops cleanly at
//!   the first torn or corrupt frame.
//! * [`durable`] — [`Durable`], a crash-safe tree: journal every
//!   mutation, checkpoint past a log-size threshold, recover any crash
//!   to a consistent acknowledged-prefix state.
//! * [`vfs`] — the filesystem abstraction ([`vfs::StdVfs`],
//!   [`vfs::MemVfs`]) plus a deterministic fault injector
//!   ([`vfs::FaultVfs`]) that can cut the write stream at any byte,
//!   which is how the crash-recovery guarantees are tested
//!   exhaustively.
//!
//! Because the PH-tree's structure is canonical, the snapshot is
//! byte-for-byte deterministic for a given tree content.
//!
//! ```
//! use phtree::PhTree;
//!
//! let dir = std::env::temp_dir().join("phstore-doc");
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("doc.pht");
//!
//! let mut tree: PhTree<u32, 2> = PhTree::new();
//! for i in 0..1000u64 {
//!     tree.insert([i % 37, i / 37], i as u32);
//! }
//! let stats = phstore::save(&tree, &path).unwrap();
//! assert!(stats.pages > 0);
//!
//! let loaded: PhTree<u32, 2> = phstore::load(&path).unwrap();
//! assert_eq!(loaded.len(), tree.len());
//! assert_eq!(loaded.get(&[5, 7]), tree.get(&[5, 7]));
//! # std::fs::remove_file(&path).ok();
//! ```

#![warn(missing_docs)]

pub mod codec;
pub mod durable;
mod error;
pub mod metrics;
pub mod pager;
pub mod record;
pub mod retry;
mod store;
pub mod superblock;
pub mod vfs;
pub mod wal;

pub use codec::ValueCodec;
pub use durable::{Durable, DurableConfig, RecoveryStats};
pub use error::{Corruption, StoreError};
pub use metrics::StoreMetrics;
pub use retry::{RetryClock, RetryPolicy, RetryVfs, SystemClock, TestClock};
pub use store::{load, load_with, save, save_with, SaveStats};

/// FNV-1a 64-bit checksum used for header and record integrity.
/// Public so layers above (e.g. phshard's sharded manifest) can frame
/// their own small metadata files with the same integrity check.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}
