//! Virtual filesystem abstraction for fault-injectable I/O.
//!
//! Everything `phstore` writes — pages, records, WAL frames, snapshot
//! rotations — goes through [`Vfs`]/[`VfsFile`] so that tests can swap
//! the real filesystem ([`StdVfs`]) for a deterministic in-memory one
//! ([`MemVfs`]) and wrap either in a fault injector ([`FaultVfs`]) that
//! cuts a workload's writes at an arbitrary byte (torn writes), fails
//! `sync`, or fails `rename` — then "recovers" by reopening the
//! surviving bytes. This is what makes the crash-point sweep in
//! `tests/crash.rs` possible: every byte offset of the write stream is
//! a simulated power cut.
//!
//! The crash model: writes reach stable storage in issue order and a
//! crash preserves an arbitrary *prefix* of the remaining write stream
//! (byte-granular, so page writes can tear). `sync` is a durability
//! barrier on the real filesystem; in the in-memory model writes are
//! immediately durable and the cut point models the crash instead.

use std::collections::HashMap;
use std::fs;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// An open random-access file.
///
/// `Send + Sync` so containers holding file handles (e.g. a
/// [`crate::Durable`] inside a sharded layer's reader-writer cell) can
/// be shared across threads; all methods take `&mut self`, so `Sync`
/// costs implementors nothing.
#[allow(clippy::len_without_is_empty)] // emptiness is meaningless for file handles
pub trait VfsFile: Send + Sync {
    /// Reads exactly `buf.len()` bytes at absolute offset `off`.
    fn read_exact_at(&mut self, buf: &mut [u8], off: u64) -> io::Result<()>;
    /// Writes all of `buf` at absolute offset `off`, extending the file
    /// if needed.
    fn write_all_at(&mut self, buf: &[u8], off: u64) -> io::Result<()>;
    /// Current file length in bytes.
    fn len(&mut self) -> io::Result<u64>;
    /// Truncates (or extends with zeros) to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
    /// Durability barrier: all prior writes reach stable storage.
    fn sync_all(&mut self) -> io::Result<()>;
}

/// A filesystem namespace: open/create/rename/remove files.
pub trait Vfs: Send + Sync {
    /// Creates (truncating) a writable file.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Opens an existing file for reading and writing.
    fn open(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Whether `path` exists.
    fn exists(&self, path: &Path) -> bool;
    /// Atomically replaces `to` with `from`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes a file (ok if absent is an error, like `std::fs`).
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Creates a directory and its parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Durability barrier on a *directory*: renames/creates within it
    /// reach stable storage (fsync of the directory fd on real files).
    fn sync_dir(&self, path: &Path) -> io::Result<()>;
}

// ---------------------------------------------------------------- Std

/// The real filesystem.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdVfs;

struct StdFile(fs::File);

impl VfsFile for StdFile {
    fn read_exact_at(&mut self, buf: &mut [u8], off: u64) -> io::Result<()> {
        self.0.seek(SeekFrom::Start(off))?;
        self.0.read_exact(buf)
    }

    fn write_all_at(&mut self, buf: &[u8], off: u64) -> io::Result<()> {
        self.0.seek(SeekFrom::Start(off))?;
        self.0.write_all(buf)
    }

    fn len(&mut self) -> io::Result<u64> {
        Ok(self.0.metadata()?.len())
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }

    fn sync_all(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
}

impl Vfs for StdVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let f = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Box::new(StdFile(f)))
    }

    fn open(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let f = fs::OpenOptions::new().read(true).write(true).open(path)?;
        Ok(Box::new(StdFile(f)))
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        // Opening a directory read-only and fsyncing it is the portable
        // Unix way to make renames within it durable.
        #[cfg(unix)]
        {
            fs::File::open(path)?.sync_all()
        }
        #[cfg(not(unix))]
        {
            let _ = path;
            Ok(())
        }
    }
}

// ---------------------------------------------------------------- Mem

type MemFileData = Arc<Mutex<Vec<u8>>>;

/// A deterministic in-memory filesystem, shared by cloning.
///
/// Open handles hold the file *content* (like POSIX fds), so renaming
/// or unlinking a path does not invalidate handles. Writes are
/// immediately durable — crash simulation is the fault injector's job.
#[derive(Clone, Default)]
pub struct MemVfs {
    files: Arc<Mutex<HashMap<PathBuf, MemFileData>>>,
}

struct MemFile {
    data: MemFileData,
}

impl VfsFile for MemFile {
    fn read_exact_at(&mut self, buf: &mut [u8], off: u64) -> io::Result<()> {
        let data = self.data.lock().unwrap();
        let off = off as usize;
        if off + buf.len() > data.len() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "mem read past end of file",
            ));
        }
        buf.copy_from_slice(&data[off..off + buf.len()]);
        Ok(())
    }

    fn write_all_at(&mut self, buf: &[u8], off: u64) -> io::Result<()> {
        let mut data = self.data.lock().unwrap();
        let off = off as usize;
        if data.len() < off + buf.len() {
            data.resize(off + buf.len(), 0);
        }
        data[off..off + buf.len()].copy_from_slice(buf);
        Ok(())
    }

    fn len(&mut self) -> io::Result<u64> {
        Ok(self.data.lock().unwrap().len() as u64)
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.data.lock().unwrap().resize(len as usize, 0);
        Ok(())
    }

    fn sync_all(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl MemVfs {
    /// A fresh, empty in-memory filesystem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of a file's bytes (test helper).
    pub fn read_file(&self, path: &Path) -> Option<Vec<u8>> {
        self.files
            .lock()
            .unwrap()
            .get(path)
            .map(|d| d.lock().unwrap().clone())
    }

    /// Overwrites a file's bytes wholesale (test helper).
    pub fn write_file(&self, path: &Path, bytes: Vec<u8>) {
        self.files
            .lock()
            .unwrap()
            .insert(path.to_path_buf(), Arc::new(Mutex::new(bytes)));
    }

    /// XORs `mask` into the byte at `offset` — bit-flip fault injection.
    pub fn corrupt(&self, path: &Path, offset: u64, mask: u8) -> bool {
        let files = self.files.lock().unwrap();
        match files.get(path) {
            Some(d) => {
                let mut data = d.lock().unwrap();
                match data.get_mut(offset as usize) {
                    Some(b) => {
                        *b ^= mask;
                        true
                    }
                    None => false,
                }
            }
            None => false,
        }
    }

    /// All current file paths (test helper).
    pub fn paths(&self) -> Vec<PathBuf> {
        self.files.lock().unwrap().keys().cloned().collect()
    }

    /// A deep copy: the clone's files no longer share content with
    /// `self` (simulates re-reading the disk after a crash elsewhere).
    pub fn deep_clone(&self) -> MemVfs {
        let files = self.files.lock().unwrap();
        let copied = files
            .iter()
            .map(|(p, d)| (p.clone(), Arc::new(Mutex::new(d.lock().unwrap().clone()))))
            .collect();
        MemVfs {
            files: Arc::new(Mutex::new(copied)),
        }
    }
}

impl Vfs for MemVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let data: MemFileData = Arc::new(Mutex::new(Vec::new()));
        self.files
            .lock()
            .unwrap()
            .insert(path.to_path_buf(), Arc::clone(&data));
        Ok(Box::new(MemFile { data }))
    }

    fn open(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let files = self.files.lock().unwrap();
        match files.get(path) {
            Some(data) => Ok(Box::new(MemFile {
                data: Arc::clone(data),
            })),
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("mem file not found: {}", path.display()),
            )),
        }
    }

    fn exists(&self, path: &Path) -> bool {
        self.files.lock().unwrap().contains_key(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut files = self.files.lock().unwrap();
        match files.remove(from) {
            Some(data) => {
                files.insert(to.to_path_buf(), data);
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("mem rename source not found: {}", from.display()),
            )),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        match self.files.lock().unwrap().remove(path) {
            Some(_) => Ok(()),
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("mem remove target not found: {}", path.display()),
            )),
        }
    }

    fn create_dir_all(&self, _path: &Path) -> io::Result<()> {
        Ok(())
    }

    fn sync_dir(&self, _path: &Path) -> io::Result<()> {
        Ok(())
    }
}

// -------------------------------------------------------------- Fault

/// What to break, and when. All budgets count only operations on files
/// whose *full path* contains [`FaultConfig::target`] (every file when
/// `target` is `None`). Full-path matching lets a sweep target one
/// shard's files — e.g. `"shard-001/wal"` — while siblings write freely;
/// bare file-name substrings like `"wal"` still match as before.
#[derive(Clone, Debug, Default)]
pub struct FaultConfig {
    /// Substring selecting which files the budgets apply to.
    pub target: Option<String>,
    /// Total matched bytes writable before the crash. The write that
    /// crosses the budget is *torn*: its prefix up to the boundary is
    /// applied, the rest is lost.
    pub write_budget: Option<u64>,
    /// Matched `sync_all` calls allowed before one fails (and crashes).
    pub sync_budget: Option<u64>,
    /// Matched renames allowed before one fails (and crashes). The
    /// failing rename does not move the file — the atomicity test.
    pub rename_budget: Option<u64>,
}

#[derive(Debug, Default)]
struct FaultState {
    cfg: FaultConfig,
    bytes_written: u64,
    syncs: u64,
    renames: u64,
    crashed: bool,
}

fn crashed_err() -> io::Error {
    io::Error::other("fault injection: simulated crash")
}

/// A [`Vfs`] wrapper that injects faults per [`FaultConfig`]. After the
/// first injected fault the whole VFS acts crashed: every subsequent
/// operation fails, like a dead process. The wrapped VFS retains
/// whatever bytes survived — reopen it directly to "recover".
#[derive(Clone)]
pub struct FaultVfs {
    inner: Arc<dyn Vfs>,
    state: Arc<Mutex<FaultState>>,
}

impl FaultVfs {
    /// Wraps `inner`, applying `cfg`'s budgets.
    pub fn new(inner: Arc<dyn Vfs>, cfg: FaultConfig) -> Self {
        FaultVfs {
            inner,
            state: Arc::new(Mutex::new(FaultState {
                cfg,
                ..Default::default()
            })),
        }
    }

    /// Whether an injected fault has fired.
    pub fn crashed(&self) -> bool {
        self.state.lock().unwrap().crashed
    }

    /// Matched bytes written so far (for sizing sweep budgets).
    pub fn bytes_written(&self) -> u64 {
        self.state.lock().unwrap().bytes_written
    }

    fn matches(&self, path: &Path) -> bool {
        let state = self.state.lock().unwrap();
        match &state.cfg.target {
            None => true,
            Some(t) => path.to_string_lossy().contains(t.as_str()),
        }
    }

    fn check_alive(&self) -> io::Result<()> {
        if self.state.lock().unwrap().crashed {
            Err(crashed_err())
        } else {
            Ok(())
        }
    }
}

struct FaultFile {
    inner: Box<dyn VfsFile>,
    state: Arc<Mutex<FaultState>>,
    matched: bool,
}

impl VfsFile for FaultFile {
    fn read_exact_at(&mut self, buf: &mut [u8], off: u64) -> io::Result<()> {
        if self.state.lock().unwrap().crashed {
            return Err(crashed_err());
        }
        self.inner.read_exact_at(buf, off)
    }

    fn write_all_at(&mut self, buf: &[u8], off: u64) -> io::Result<()> {
        let allowed = {
            let mut state = self.state.lock().unwrap();
            if state.crashed {
                return Err(crashed_err());
            }
            if !self.matched {
                buf.len() as u64
            } else {
                match state.cfg.write_budget {
                    None => {
                        state.bytes_written += buf.len() as u64;
                        buf.len() as u64
                    }
                    Some(budget) => {
                        let left = budget.saturating_sub(state.bytes_written);
                        let take = left.min(buf.len() as u64);
                        state.bytes_written += take;
                        if take < buf.len() as u64 {
                            state.crashed = true;
                        }
                        take
                    }
                }
            }
        };
        // Apply the surviving prefix (torn write), then report the
        // crash if the write was cut short.
        if allowed > 0 {
            self.inner.write_all_at(&buf[..allowed as usize], off)?;
        }
        if allowed < buf.len() as u64 {
            Err(crashed_err())
        } else {
            Ok(())
        }
    }

    fn len(&mut self) -> io::Result<u64> {
        if self.state.lock().unwrap().crashed {
            return Err(crashed_err());
        }
        self.inner.len()
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        if self.state.lock().unwrap().crashed {
            return Err(crashed_err());
        }
        self.inner.set_len(len)
    }

    fn sync_all(&mut self) -> io::Result<()> {
        {
            let mut state = self.state.lock().unwrap();
            if state.crashed {
                return Err(crashed_err());
            }
            if self.matched {
                if let Some(budget) = state.cfg.sync_budget {
                    if state.syncs >= budget {
                        state.crashed = true;
                        return Err(crashed_err());
                    }
                    state.syncs += 1;
                }
            }
        }
        self.inner.sync_all()
    }
}

impl Vfs for FaultVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.check_alive()?;
        let matched = self.matches(path);
        Ok(Box::new(FaultFile {
            inner: self.inner.create(path)?,
            state: Arc::clone(&self.state),
            matched,
        }))
    }

    fn open(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.check_alive()?;
        let matched = self.matches(path);
        Ok(Box::new(FaultFile {
            inner: self.inner.open(path)?,
            state: Arc::clone(&self.state),
            matched,
        }))
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.check_alive()?;
        if self.matches(from) || self.matches(to) {
            let mut state = self.state.lock().unwrap();
            if let Some(budget) = state.cfg.rename_budget {
                if state.renames >= budget {
                    state.crashed = true;
                    return Err(crashed_err());
                }
                state.renames += 1;
            }
        }
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.check_alive()?;
        self.inner.remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.check_alive()?;
        self.inner.create_dir_all(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        self.check_alive()?;
        self.inner.sync_dir(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_vfs_roundtrip_and_rename() {
        let vfs = MemVfs::new();
        let a = Path::new("/x/a");
        let b = Path::new("/x/b");
        {
            let mut f = vfs.create(a).unwrap();
            f.write_all_at(b"hello", 0).unwrap();
            f.write_all_at(b"!", 5).unwrap();
            assert_eq!(f.len().unwrap(), 6);
        }
        vfs.rename(a, b).unwrap();
        assert!(!vfs.exists(a));
        let mut f = vfs.open(b).unwrap();
        let mut buf = [0u8; 6];
        f.read_exact_at(&mut buf, 0).unwrap();
        assert_eq!(&buf, b"hello!");
        // Handles survive renames (POSIX-style).
        let mut held = vfs.open(b).unwrap();
        vfs.rename(b, a).unwrap();
        held.write_all_at(b"H", 0).unwrap();
        assert_eq!(vfs.read_file(a).unwrap(), b"Hello!");
    }

    #[test]
    fn mem_vfs_read_past_end_fails() {
        let vfs = MemVfs::new();
        let p = Path::new("/f");
        vfs.create(p).unwrap().write_all_at(b"abc", 0).unwrap();
        let mut f = vfs.open(p).unwrap();
        let mut buf = [0u8; 4];
        assert!(f.read_exact_at(&mut buf, 0).is_err());
        assert!(f.read_exact_at(&mut buf[..2], 2).is_err());
    }

    #[test]
    fn fault_write_budget_tears_the_crossing_write() {
        let mem = MemVfs::new();
        let faulty = FaultVfs::new(
            Arc::new(mem.clone()),
            FaultConfig {
                write_budget: Some(7),
                ..Default::default()
            },
        );
        let p = Path::new("/w");
        let mut f = faulty.create(p).unwrap();
        f.write_all_at(b"aaaa", 0).unwrap(); // 4 of 7
        let err = f.write_all_at(b"bbbb", 4).unwrap_err(); // torn at 7
        assert_eq!(err.to_string(), crashed_err().to_string());
        assert!(faulty.crashed());
        // Everything afterwards fails.
        assert!(f.write_all_at(b"c", 0).is_err());
        assert!(faulty.create(Path::new("/other")).is_err());
        // Surviving bytes: 4 + 3-byte torn prefix.
        assert_eq!(mem.read_file(p).unwrap(), b"aaaabbb");
    }

    #[test]
    fn fault_target_scopes_budget_to_matching_files() {
        let mem = MemVfs::new();
        let faulty = FaultVfs::new(
            Arc::new(mem.clone()),
            FaultConfig {
                target: Some("wal".into()),
                write_budget: Some(2),
                ..Default::default()
            },
        );
        let mut other = faulty.create(Path::new("/dir/snapshot.pht")).unwrap();
        other.write_all_at(&[9u8; 100], 0).unwrap(); // unmetered
        let mut wal = faulty.create(Path::new("/dir/wal.log")).unwrap();
        assert!(wal.write_all_at(&[1u8; 3], 0).is_err()); // torn at 2
        assert_eq!(mem.read_file(Path::new("/dir/wal.log")).unwrap(), [1, 1]);
    }

    #[test]
    fn fault_target_matches_full_path_for_per_shard_scoping() {
        let mem = MemVfs::new();
        let faulty = FaultVfs::new(
            Arc::new(mem.clone()),
            FaultConfig {
                target: Some("shard-001/wal".into()),
                write_budget: Some(2),
                ..Default::default()
            },
        );
        // Same file name under a different shard dir: unmetered.
        let mut other = faulty.create(Path::new("/db/shard-000/wal.log")).unwrap();
        other.write_all_at(&[9u8; 50], 0).unwrap();
        let mut hot = faulty.create(Path::new("/db/shard-001/wal.log")).unwrap();
        assert!(hot.write_all_at(&[1u8; 3], 0).is_err()); // torn at 2
        assert_eq!(
            mem.read_file(Path::new("/db/shard-001/wal.log")).unwrap(),
            [1, 1]
        );
    }

    #[test]
    fn fault_sync_and_rename_budgets() {
        let mem = MemVfs::new();
        let faulty = FaultVfs::new(
            Arc::new(mem.clone()),
            FaultConfig {
                sync_budget: Some(1),
                rename_budget: Some(0),
                ..Default::default()
            },
        );
        let p = Path::new("/s");
        let mut f = faulty.create(p).unwrap();
        f.sync_all().unwrap();
        assert!(f.sync_all().is_err());
        assert!(faulty.crashed());

        let faulty2 = FaultVfs::new(
            Arc::new(mem.clone()),
            FaultConfig {
                rename_budget: Some(0),
                ..Default::default()
            },
        );
        faulty2.create(Path::new("/a")).unwrap();
        assert!(faulty2.rename(Path::new("/a"), Path::new("/b")).is_err());
        assert!(mem.exists(Path::new("/a")), "failed rename must not move");
        assert!(!mem.exists(Path::new("/b")));
    }

    #[test]
    fn deep_clone_detaches_content() {
        let vfs = MemVfs::new();
        let p = Path::new("/f");
        vfs.create(p).unwrap().write_all_at(b"abc", 0).unwrap();
        let copy = vfs.deep_clone();
        vfs.corrupt(p, 0, 0xFF);
        assert_eq!(copy.read_file(p).unwrap(), b"abc");
        assert_ne!(vfs.read_file(p).unwrap(), b"abc");
    }
}
