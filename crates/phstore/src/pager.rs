//! Fixed-size-page file substrate.
//!
//! Page 0 is the header page (magic, format version, page count and a
//! user metadata blob, all checksummed); data pages are allocated
//! sequentially. The pager knows nothing about records — see
//! [`crate::record`] for the slotted layout on top.
//!
//! All I/O goes through the [`crate::vfs`] abstraction so tests can run
//! pagers on in-memory or fault-injected filesystems; [`Pager::create`]
//! and [`Pager::open`] are real-filesystem conveniences.

use crate::error::{Corruption, StoreError};
use crate::vfs::{StdVfs, Vfs, VfsFile};
use std::path::Path;

/// Page size in bytes. 4 KiB, the common disk/OS page granularity the
/// paper's outlook refers to.
pub const PAGE_SIZE: usize = 4096;

const MAGIC: &[u8; 8] = b"PHSTORE1";
/// Maximum user metadata bytes storable in the header page.
pub const MAX_META: usize = PAGE_SIZE - 8 - 8 - 8 - 4;

/// A page-granular file.
pub struct Pager {
    file: Box<dyn VfsFile>,
    n_pages: u64,
}

impl Pager {
    /// Creates (truncating) a paged file with the given user metadata,
    /// on the real filesystem.
    pub fn create(path: &Path, meta: &[u8]) -> Result<Pager, StoreError> {
        Self::create_in(&StdVfs, path, meta)
    }

    /// Creates (truncating) a paged file on any [`Vfs`].
    pub fn create_in(vfs: &dyn Vfs, path: &Path, meta: &[u8]) -> Result<Pager, StoreError> {
        assert!(meta.len() <= MAX_META, "metadata too large");
        let file = vfs.create(path)?;
        let mut p = Pager { file, n_pages: 1 };
        p.write_header(meta)?;
        Ok(p)
    }

    /// Opens an existing paged file on the real filesystem, returning
    /// the pager and the user metadata from the header page.
    pub fn open(path: &Path) -> Result<(Pager, Vec<u8>), StoreError> {
        Self::open_in(&StdVfs, path)
    }

    /// Opens an existing paged file on any [`Vfs`].
    pub fn open_in(vfs: &dyn Vfs, path: &Path) -> Result<(Pager, Vec<u8>), StoreError> {
        let mut file = vfs.open(path)?;
        let len = file.len()?;
        if len < PAGE_SIZE as u64 || len % PAGE_SIZE as u64 != 0 {
            return Err(Corruption::new("file size is not page-aligned")
                .at_offset(len)
                .into());
        }
        let mut p = Pager {
            file,
            n_pages: len / PAGE_SIZE as u64,
        };
        let header = p.read_page(0)?;
        if &header[..8] != MAGIC {
            return Err(StoreError::corrupt("bad magic"));
        }
        let stored_pages = u64::from_le_bytes(header[8..16].try_into().unwrap());
        if stored_pages != p.n_pages {
            return Err(Corruption::new("page count mismatch")
                .at_page(stored_pages)
                .into());
        }
        let meta_len = u32::from_le_bytes(header[16..20].try_into().unwrap()) as usize;
        if meta_len > MAX_META {
            return Err(StoreError::corrupt("oversized metadata"));
        }
        let meta = header[20..20 + meta_len].to_vec();
        let stored_sum = u64::from_le_bytes(header[PAGE_SIZE - 8..].try_into().unwrap());
        if stored_sum != crate::fnv1a(&header[..PAGE_SIZE - 8]) {
            return Err(Corruption::new("header checksum mismatch")
                .at_page(0)
                .into());
        }
        Ok((p, meta))
    }

    /// Rewrites the header page (page count + metadata + checksum).
    pub fn write_header(&mut self, meta: &[u8]) -> Result<(), StoreError> {
        assert!(meta.len() <= MAX_META, "metadata too large");
        let mut page = vec![0u8; PAGE_SIZE];
        page[..8].copy_from_slice(MAGIC);
        page[8..16].copy_from_slice(&self.n_pages.to_le_bytes());
        page[16..20].copy_from_slice(&(meta.len() as u32).to_le_bytes());
        page[20..20 + meta.len()].copy_from_slice(meta);
        let sum = crate::fnv1a(&page[..PAGE_SIZE - 8]);
        page[PAGE_SIZE - 8..].copy_from_slice(&sum.to_le_bytes());
        self.write_page(0, &page)
    }

    /// Number of pages in the file (including the header page).
    pub fn n_pages(&self) -> u64 {
        self.n_pages
    }

    /// Allocates a fresh (zeroed) page at the end of the file.
    pub fn alloc_page(&mut self) -> Result<u64, StoreError> {
        let id = self.n_pages;
        self.n_pages += 1;
        self.write_page(id, &[0u8; PAGE_SIZE])?;
        Ok(id)
    }

    /// Reads page `id` in full.
    pub fn read_page(&mut self, id: u64) -> Result<Vec<u8>, StoreError> {
        if id >= self.n_pages {
            return Err(Corruption::new("page id out of range").at_page(id).into());
        }
        let mut buf = vec![0u8; PAGE_SIZE];
        self.file.read_exact_at(&mut buf, id * PAGE_SIZE as u64)?;
        Ok(buf)
    }

    /// Writes page `id` in full.
    pub fn write_page(&mut self, id: u64, data: &[u8]) -> Result<(), StoreError> {
        assert_eq!(data.len(), PAGE_SIZE);
        assert!(id < self.n_pages, "write to unallocated page");
        self.file.write_all_at(data, id * PAGE_SIZE as u64)?;
        Ok(())
    }

    /// Flushes everything to stable storage.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.file.sync_all()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("phstore-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn create_open_roundtrip_with_meta() {
        let path = tmp("pager_meta.pht");
        {
            let mut p = Pager::create(&path, b"hello meta").unwrap();
            p.sync().unwrap();
        }
        let (p, meta) = Pager::open(&path).unwrap();
        assert_eq!(meta, b"hello meta");
        assert_eq!(p.n_pages(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pages_store_and_return_data() {
        let path = tmp("pager_data.pht");
        let mut p = Pager::create(&path, b"").unwrap();
        let a = p.alloc_page().unwrap();
        let b = p.alloc_page().unwrap();
        assert_ne!(a, b);
        let mut pa = vec![0xAAu8; PAGE_SIZE];
        pa[0] = 1;
        let mut pb = vec![0x55u8; PAGE_SIZE];
        pb[PAGE_SIZE - 1] = 2;
        p.write_page(a, &pa).unwrap();
        p.write_page(b, &pb).unwrap();
        // Header must track the page count across reopen.
        p.write_header(b"x").unwrap();
        drop(p);
        let (mut p, meta) = Pager::open(&path).unwrap();
        assert_eq!(meta, b"x");
        assert_eq!(p.read_page(a).unwrap(), pa);
        assert_eq!(p.read_page(b).unwrap(), pb);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mem_vfs_pager_roundtrip() {
        let vfs = MemVfs::new();
        let path = Path::new("/mem/pager.pht");
        let a;
        {
            let mut p = Pager::create_in(&vfs, path, b"mem meta").unwrap();
            a = p.alloc_page().unwrap();
            let mut page = vec![0x5Au8; PAGE_SIZE];
            page[17] = 99;
            p.write_page(a, &page).unwrap();
            p.write_header(b"mem meta").unwrap();
            p.sync().unwrap();
        }
        let (mut p, meta) = Pager::open_in(&vfs, path).unwrap();
        assert_eq!(meta, b"mem meta");
        assert_eq!(p.read_page(a).unwrap()[17], 99);
    }

    #[test]
    fn corrupt_header_is_rejected_with_context() {
        let vfs = MemVfs::new();
        let path = Path::new("/mem/corrupt.pht");
        {
            let mut p = Pager::create_in(&vfs, path, b"meta").unwrap();
            p.alloc_page().unwrap();
            p.write_header(b"meta").unwrap();
        }
        // Flip a metadata byte without fixing the checksum.
        assert!(vfs.corrupt(path, 21, 0xFF));
        let err = match Pager::open_in(&vfs, path) {
            Err(e) => e,
            Ok(_) => panic!("corrupt header must be rejected"),
        };
        assert!(
            err.to_string().contains("header checksum mismatch"),
            "{err}"
        );
        assert!(matches!(err, StoreError::Corrupt(c) if c.page == Some(0)));
    }

    #[test]
    fn truncated_file_is_rejected() {
        let path = tmp("pager_trunc.pht");
        {
            let mut p = Pager::create(&path, b"").unwrap();
            p.alloc_page().unwrap();
            p.write_header(b"").unwrap();
        }
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(PAGE_SIZE as u64 + 100).unwrap();
        drop(f);
        assert!(Pager::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_range_page_read_fails() {
        let path = tmp("pager_range.pht");
        let mut p = Pager::create(&path, b"").unwrap();
        let err = p.read_page(5).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(c) if c.page == Some(5)));
        std::fs::remove_file(&path).ok();
    }
}
