//! Fixed-size-page file substrate.
//!
//! Page 0 is the header page (magic, format version, page count and a
//! user metadata blob, all checksummed); data pages are allocated
//! sequentially. The pager knows nothing about records — see
//! [`crate::record`] for the slotted layout on top.
//!
//! All I/O goes through the [`crate::vfs`] abstraction so tests can run
//! pagers on in-memory or fault-injected filesystems; [`Pager::create`]
//! and [`Pager::open`] are real-filesystem conveniences.

use crate::error::{Corruption, StoreError};
use crate::superblock;
use crate::vfs::{StdVfs, Vfs, VfsFile};
use std::path::Path;

pub use crate::superblock::{MAX_META, PAGE_SIZE};

use crate::superblock::STORE_MAGIC as MAGIC;

/// A page-granular file.
pub struct Pager {
    file: Box<dyn VfsFile>,
    n_pages: u64,
}

impl Pager {
    /// Creates (truncating) a paged file with the given user metadata,
    /// on the real filesystem.
    pub fn create(path: &Path, meta: &[u8]) -> Result<Pager, StoreError> {
        Self::create_in(&StdVfs, path, meta)
    }

    /// Creates (truncating) a paged file on any [`Vfs`].
    pub fn create_in(vfs: &dyn Vfs, path: &Path, meta: &[u8]) -> Result<Pager, StoreError> {
        assert!(meta.len() <= MAX_META, "metadata too large");
        let file = vfs.create(path)?;
        let mut p = Pager { file, n_pages: 1 };
        p.write_header(meta)?;
        Ok(p)
    }

    /// Opens an existing paged file on the real filesystem, returning
    /// the pager and the user metadata from the header page.
    pub fn open(path: &Path) -> Result<(Pager, Vec<u8>), StoreError> {
        Self::open_in(&StdVfs, path)
    }

    /// Opens an existing paged file on any [`Vfs`].
    pub fn open_in(vfs: &dyn Vfs, path: &Path) -> Result<(Pager, Vec<u8>), StoreError> {
        let mut file = vfs.open(path)?;
        let len = file.len()?;
        if len < PAGE_SIZE as u64 || len % PAGE_SIZE as u64 != 0 {
            return Err(Corruption::new("file size is not page-aligned")
                .at_offset(len)
                .into());
        }
        let mut p = Pager {
            file,
            n_pages: len / PAGE_SIZE as u64,
        };
        let header = p.read_page(0)?;
        let (stored_pages, meta) = superblock::decode(MAGIC, &header)?;
        if stored_pages != p.n_pages {
            return Err(Corruption::new("page count mismatch")
                .at_page(stored_pages)
                .into());
        }
        Ok((p, meta))
    }

    /// Rewrites the header page (page count + metadata + checksum)
    /// through the shared [`superblock`] codec.
    pub fn write_header(&mut self, meta: &[u8]) -> Result<(), StoreError> {
        let page = superblock::encode(MAGIC, self.n_pages, meta);
        self.write_page(0, &page)
    }

    /// Number of pages in the file (including the header page).
    pub fn n_pages(&self) -> u64 {
        self.n_pages
    }

    /// Allocates a fresh (zeroed) page at the end of the file.
    pub fn alloc_page(&mut self) -> Result<u64, StoreError> {
        let id = self.n_pages;
        self.n_pages += 1;
        self.write_page(id, &[0u8; PAGE_SIZE])?;
        Ok(id)
    }

    /// Reads page `id` in full.
    pub fn read_page(&mut self, id: u64) -> Result<Vec<u8>, StoreError> {
        if id >= self.n_pages {
            return Err(Corruption::new("page id out of range").at_page(id).into());
        }
        let mut buf = vec![0u8; PAGE_SIZE];
        self.file.read_exact_at(&mut buf, id * PAGE_SIZE as u64)?;
        Ok(buf)
    }

    /// Writes page `id` in full.
    pub fn write_page(&mut self, id: u64, data: &[u8]) -> Result<(), StoreError> {
        assert_eq!(data.len(), PAGE_SIZE);
        assert!(id < self.n_pages, "write to unallocated page");
        self.file.write_all_at(data, id * PAGE_SIZE as u64)?;
        Ok(())
    }

    /// Flushes everything to stable storage.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.file.sync_all()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("phstore-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn create_open_roundtrip_with_meta() {
        let path = tmp("pager_meta.pht");
        {
            let mut p = Pager::create(&path, b"hello meta").unwrap();
            p.sync().unwrap();
        }
        let (p, meta) = Pager::open(&path).unwrap();
        assert_eq!(meta, b"hello meta");
        assert_eq!(p.n_pages(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pages_store_and_return_data() {
        let path = tmp("pager_data.pht");
        let mut p = Pager::create(&path, b"").unwrap();
        let a = p.alloc_page().unwrap();
        let b = p.alloc_page().unwrap();
        assert_ne!(a, b);
        let mut pa = vec![0xAAu8; PAGE_SIZE];
        pa[0] = 1;
        let mut pb = vec![0x55u8; PAGE_SIZE];
        pb[PAGE_SIZE - 1] = 2;
        p.write_page(a, &pa).unwrap();
        p.write_page(b, &pb).unwrap();
        // Header must track the page count across reopen.
        p.write_header(b"x").unwrap();
        drop(p);
        let (mut p, meta) = Pager::open(&path).unwrap();
        assert_eq!(meta, b"x");
        assert_eq!(p.read_page(a).unwrap(), pa);
        assert_eq!(p.read_page(b).unwrap(), pb);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mem_vfs_pager_roundtrip() {
        let vfs = MemVfs::new();
        let path = Path::new("/mem/pager.pht");
        let a;
        {
            let mut p = Pager::create_in(&vfs, path, b"mem meta").unwrap();
            a = p.alloc_page().unwrap();
            let mut page = vec![0x5Au8; PAGE_SIZE];
            page[17] = 99;
            p.write_page(a, &page).unwrap();
            p.write_header(b"mem meta").unwrap();
            p.sync().unwrap();
        }
        let (mut p, meta) = Pager::open_in(&vfs, path).unwrap();
        assert_eq!(meta, b"mem meta");
        assert_eq!(p.read_page(a).unwrap()[17], 99);
    }

    #[test]
    fn corrupt_header_is_rejected_with_context() {
        let vfs = MemVfs::new();
        let path = Path::new("/mem/corrupt.pht");
        {
            let mut p = Pager::create_in(&vfs, path, b"meta").unwrap();
            p.alloc_page().unwrap();
            p.write_header(b"meta").unwrap();
        }
        // Flip a metadata byte without fixing the checksum.
        assert!(vfs.corrupt(path, 21, 0xFF));
        let err = match Pager::open_in(&vfs, path) {
            Err(e) => e,
            Ok(_) => panic!("corrupt header must be rejected"),
        };
        assert!(
            err.to_string().contains("header checksum mismatch"),
            "{err}"
        );
        assert!(matches!(err, StoreError::Corrupt(c) if c.page == Some(0)));
    }

    #[test]
    fn truncated_file_is_rejected() {
        let path = tmp("pager_trunc.pht");
        {
            let mut p = Pager::create(&path, b"").unwrap();
            p.alloc_page().unwrap();
            p.write_header(b"").unwrap();
        }
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(PAGE_SIZE as u64 + 100).unwrap();
        drop(f);
        assert!(Pager::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_range_page_read_fails() {
        let path = tmp("pager_range.pht");
        let mut p = Pager::create(&path, b"").unwrap();
        let err = p.read_page(5).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(c) if c.page == Some(5)));
        std::fs::remove_file(&path).ok();
    }
}
