//! Fixed-size-page file substrate.
//!
//! Page 0 is the header page (magic, format version, page count and a
//! user metadata blob, all checksummed); data pages are allocated
//! sequentially. The pager knows nothing about records — see
//! [`crate::record`] for the slotted layout on top.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Page size in bytes. 4 KiB, the common disk/OS page granularity the
/// paper's outlook refers to.
pub const PAGE_SIZE: usize = 4096;

const MAGIC: &[u8; 8] = b"PHSTORE1";
/// Maximum user metadata bytes storable in the header page.
pub const MAX_META: usize = PAGE_SIZE - 8 - 8 - 8 - 4;

/// A page-granular file.
pub struct Pager {
    file: File,
    n_pages: u64,
}

impl Pager {
    /// Creates (truncating) a paged file with the given user metadata.
    pub fn create(path: &Path, meta: &[u8]) -> io::Result<Pager> {
        assert!(meta.len() <= MAX_META, "metadata too large");
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut p = Pager { file, n_pages: 1 };
        p.write_header(meta)?;
        Ok(p)
    }

    /// Opens an existing paged file, returning the pager and the user
    /// metadata from the header page.
    pub fn open(path: &Path) -> io::Result<(Pager, Vec<u8>)> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len < PAGE_SIZE as u64 || len % PAGE_SIZE as u64 != 0 {
            return Err(corrupt("file size is not page-aligned"));
        }
        let mut p = Pager {
            file,
            n_pages: len / PAGE_SIZE as u64,
        };
        let header = p.read_page(0)?;
        if &header[..8] != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let stored_pages = u64::from_le_bytes(header[8..16].try_into().unwrap());
        if stored_pages != p.n_pages {
            return Err(corrupt("page count mismatch"));
        }
        let meta_len = u32::from_le_bytes(header[16..20].try_into().unwrap()) as usize;
        if meta_len > MAX_META {
            return Err(corrupt("oversized metadata"));
        }
        let meta = header[20..20 + meta_len].to_vec();
        let stored_sum = u64::from_le_bytes(header[PAGE_SIZE - 8..].try_into().unwrap());
        if stored_sum != crate::fnv1a(&header[..PAGE_SIZE - 8]) {
            return Err(corrupt("header checksum mismatch"));
        }
        Ok((p, meta))
    }

    /// Rewrites the header page (page count + metadata + checksum).
    pub fn write_header(&mut self, meta: &[u8]) -> io::Result<()> {
        assert!(meta.len() <= MAX_META, "metadata too large");
        let mut page = vec![0u8; PAGE_SIZE];
        page[..8].copy_from_slice(MAGIC);
        page[8..16].copy_from_slice(&self.n_pages.to_le_bytes());
        page[16..20].copy_from_slice(&(meta.len() as u32).to_le_bytes());
        page[20..20 + meta.len()].copy_from_slice(meta);
        let sum = crate::fnv1a(&page[..PAGE_SIZE - 8]);
        page[PAGE_SIZE - 8..].copy_from_slice(&sum.to_le_bytes());
        self.write_page(0, &page)
    }

    /// Number of pages in the file (including the header page).
    pub fn n_pages(&self) -> u64 {
        self.n_pages
    }

    /// Allocates a fresh (zeroed) page at the end of the file.
    pub fn alloc_page(&mut self) -> io::Result<u64> {
        let id = self.n_pages;
        self.n_pages += 1;
        self.write_page(id, &[0u8; PAGE_SIZE])?;
        Ok(id)
    }

    /// Reads page `id` in full.
    pub fn read_page(&mut self, id: u64) -> io::Result<Vec<u8>> {
        if id >= self.n_pages {
            return Err(corrupt("page id out of range"));
        }
        self.file.seek(SeekFrom::Start(id * PAGE_SIZE as u64))?;
        let mut buf = vec![0u8; PAGE_SIZE];
        self.file.read_exact(&mut buf)?;
        Ok(buf)
    }

    /// Writes page `id` in full.
    pub fn write_page(&mut self, id: u64, data: &[u8]) -> io::Result<()> {
        assert_eq!(data.len(), PAGE_SIZE);
        assert!(id < self.n_pages, "write to unallocated page");
        self.file.seek(SeekFrom::Start(id * PAGE_SIZE as u64))?;
        self.file.write_all(data)
    }

    /// Flushes everything to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_all()
    }
}

pub(crate) fn corrupt(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("phstore: {what}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("phstore-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn create_open_roundtrip_with_meta() {
        let path = tmp("pager_meta.pht");
        {
            let mut p = Pager::create(&path, b"hello meta").unwrap();
            p.sync().unwrap();
        }
        let (p, meta) = Pager::open(&path).unwrap();
        assert_eq!(meta, b"hello meta");
        assert_eq!(p.n_pages(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pages_store_and_return_data() {
        let path = tmp("pager_data.pht");
        let mut p = Pager::create(&path, b"").unwrap();
        let a = p.alloc_page().unwrap();
        let b = p.alloc_page().unwrap();
        assert_ne!(a, b);
        let mut pa = vec![0xAAu8; PAGE_SIZE];
        pa[0] = 1;
        let mut pb = vec![0x55u8; PAGE_SIZE];
        pb[PAGE_SIZE - 1] = 2;
        p.write_page(a, &pa).unwrap();
        p.write_page(b, &pb).unwrap();
        // Header must track the page count across reopen.
        p.write_header(b"x").unwrap();
        drop(p);
        let (mut p, meta) = Pager::open(&path).unwrap();
        assert_eq!(meta, b"x");
        assert_eq!(p.read_page(a).unwrap(), pa);
        assert_eq!(p.read_page(b).unwrap(), pb);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_header_is_rejected() {
        let path = tmp("pager_corrupt.pht");
        {
            let mut p = Pager::create(&path, b"meta").unwrap();
            p.alloc_page().unwrap();
            p.write_header(b"meta").unwrap();
        }
        // Flip a metadata byte without fixing the checksum.
        {
            let mut f = OpenOptions::new().write(true).open(&path).unwrap();
            f.seek(SeekFrom::Start(21)).unwrap();
            f.write_all(&[0xFF]).unwrap();
        }
        assert!(Pager::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_is_rejected() {
        let path = tmp("pager_trunc.pht");
        {
            let mut p = Pager::create(&path, b"").unwrap();
            p.alloc_page().unwrap();
            p.write_header(b"").unwrap();
        }
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(PAGE_SIZE as u64 + 100).unwrap();
        drop(f);
        assert!(Pager::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_range_page_read_fails() {
        let path = tmp("pager_range.pht");
        let mut p = Pager::create(&path, b"").unwrap();
        assert!(p.read_page(5).is_err());
        std::fs::remove_file(&path).ok();
    }
}
