//! Bounded retry-with-backoff for transient VFS failures.
//!
//! Real filesystems occasionally fail `fsync` or `rename` with
//! *transient* errors (`EINTR`, `EAGAIN`, NFS timeouts) that succeed on
//! the next attempt. Before this layer, one such blip in the middle of
//! a checkpoint rotation surfaced as a hard [`crate::StoreError`] even
//! though the store was perfectly healthy. [`RetryVfs`] wraps any
//! [`Vfs`] and retries exactly the durability-barrier operations —
//! `sync_all`, `sync_dir`, `rename` — under a bounded, exponentially
//! backed-off [`RetryPolicy`].
//!
//! Two properties keep this safe and testable:
//!
//! * **Only transient errors are retried** ([`is_transient`]):
//!   `Interrupted`, `WouldBlock` and `TimedOut`. Everything else —
//!   including the fault injector's simulated crashes, which report as
//!   `ErrorKind::Other` — surfaces immediately as a typed error, so
//!   retrying can never mask corruption or spin against a dead disk,
//!   and the crash-point sweeps see exactly the failures they inject.
//! * **Time is injected** ([`RetryClock`]): production uses
//!   [`SystemClock`] (real `thread::sleep`), tests use [`TestClock`],
//!   which records the requested sleeps without sleeping, so the
//!   backoff schedule itself is asserted deterministically.
//!
//! Reads and writes are deliberately *not* retried: a torn write is a
//! crash-consistency event the WAL protocol already handles, and
//! retrying it would re-issue bytes the fault model says were lost.

use crate::vfs::{Vfs, VfsFile};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Bounded exponential-backoff schedule for transient VFS failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first failure (0 = fail immediately, like an
    /// unwrapped VFS). Total attempts = `max_retries + 1`.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_backoff: Duration,
    /// Ceiling on a single backoff sleep.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(100),
        }
    }
}

impl RetryPolicy {
    /// The backoff slept before retry number `retry` (0-based):
    /// `min(base << retry, max)`.
    pub fn backoff(&self, retry: u32) -> Duration {
        let scaled = self
            .base_backoff
            .checked_mul(1u32 << retry.min(20))
            .unwrap_or(self.max_backoff);
        scaled.min(self.max_backoff)
    }
}

/// Whether an I/O error is worth retrying. Deliberately conservative:
/// simulated crashes (`Other`), missing files, and corruption-shaped
/// errors must surface immediately.
pub fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Source of sleeps for the backoff schedule, injected so tests run in
/// zero wall-clock time.
pub trait RetryClock: Send + Sync {
    /// Blocks (or pretends to block) for `d`.
    fn sleep(&self, d: Duration);
}

/// The production clock: real `std::thread::sleep`.
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemClock;

impl RetryClock for SystemClock {
    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// A deterministic test clock: records every requested sleep, sleeps
/// for none of them.
#[derive(Debug, Default)]
pub struct TestClock {
    slept: Mutex<Vec<Duration>>,
}

impl TestClock {
    /// A fresh clock with no recorded sleeps.
    pub fn new() -> Self {
        Self::default()
    }

    /// Every sleep requested so far, in order.
    pub fn slept(&self) -> Vec<Duration> {
        self.slept.lock().unwrap().clone()
    }
}

impl RetryClock for TestClock {
    fn sleep(&self, d: Duration) {
        self.slept.lock().unwrap().push(d);
    }
}

fn run_with_retry<T>(
    policy: &RetryPolicy,
    clock: &dyn RetryClock,
    retries_counter: &AtomicU64,
    mut op: impl FnMut() -> io::Result<T>,
) -> io::Result<T> {
    let mut retry = 0u32;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if is_transient(&e) && retry < policy.max_retries => {
                clock.sleep(policy.backoff(retry));
                retries_counter.fetch_add(1, Ordering::Relaxed);
                retry += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// A [`Vfs`] decorator retrying transient `sync_all` / `sync_dir` /
/// `rename` failures per a [`RetryPolicy`]. All other operations pass
/// straight through.
pub struct RetryVfs {
    inner: Arc<dyn Vfs>,
    policy: RetryPolicy,
    clock: Arc<dyn RetryClock>,
    retries: Arc<AtomicU64>,
}

impl RetryVfs {
    /// Wraps `inner` with the production clock.
    pub fn new(inner: Arc<dyn Vfs>, policy: RetryPolicy) -> Self {
        Self::with_clock(inner, policy, Arc::new(SystemClock))
    }

    /// Wraps `inner` with an explicit clock (tests pass [`TestClock`]).
    pub fn with_clock(
        inner: Arc<dyn Vfs>,
        policy: RetryPolicy,
        clock: Arc<dyn RetryClock>,
    ) -> Self {
        RetryVfs {
            inner,
            policy,
            clock,
            retries: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Transient failures absorbed (retried) so far, across the VFS and
    /// every file handle it opened.
    pub fn retries_absorbed(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }
}

struct RetryFile {
    inner: Box<dyn VfsFile>,
    policy: RetryPolicy,
    clock: Arc<dyn RetryClock>,
    retries: Arc<AtomicU64>,
}

impl VfsFile for RetryFile {
    fn read_exact_at(&mut self, buf: &mut [u8], off: u64) -> io::Result<()> {
        self.inner.read_exact_at(buf, off)
    }

    fn write_all_at(&mut self, buf: &[u8], off: u64) -> io::Result<()> {
        self.inner.write_all_at(buf, off)
    }

    fn len(&mut self) -> io::Result<u64> {
        self.inner.len()
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.inner.set_len(len)
    }

    fn sync_all(&mut self) -> io::Result<()> {
        let inner = &mut self.inner;
        run_with_retry(&self.policy, self.clock.as_ref(), &self.retries, || {
            inner.sync_all()
        })
    }
}

impl Vfs for RetryVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(RetryFile {
            inner: self.inner.create(path)?,
            policy: self.policy.clone(),
            clock: Arc::clone(&self.clock),
            retries: Arc::clone(&self.retries),
        }))
    }

    fn open(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(RetryFile {
            inner: self.inner.open(path)?,
            policy: self.policy.clone(),
            clock: Arc::clone(&self.clock),
            retries: Arc::clone(&self.retries),
        }))
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        run_with_retry(&self.policy, self.clock.as_ref(), &self.retries, || {
            self.inner.rename(from, to)
        })
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.create_dir_all(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        run_with_retry(&self.policy, self.clock.as_ref(), &self.retries, || {
            self.inner.sync_dir(path)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;
    use std::sync::atomic::AtomicU32;

    /// Fails the first `fail_n` matched sync/rename calls with `kind`,
    /// then behaves normally — the shape of a transient blip.
    struct FlakyVfs {
        inner: MemVfs,
        kind: io::ErrorKind,
        remaining: AtomicU32,
    }

    impl FlakyVfs {
        fn new(inner: MemVfs, kind: io::ErrorKind, fail_n: u32) -> Self {
            FlakyVfs {
                inner,
                kind,
                remaining: AtomicU32::new(fail_n),
            }
        }

        fn maybe_fail(&self) -> io::Result<()> {
            let left = self.remaining.load(Ordering::SeqCst);
            if left > 0 {
                self.remaining.store(left - 1, Ordering::SeqCst);
                return Err(io::Error::new(self.kind, "flaky vfs"));
            }
            Ok(())
        }
    }

    impl Vfs for FlakyVfs {
        fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
            self.inner.create(path)
        }
        fn open(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
            self.inner.open(path)
        }
        fn exists(&self, path: &Path) -> bool {
            self.inner.exists(path)
        }
        fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
            self.maybe_fail()?;
            self.inner.rename(from, to)
        }
        fn remove_file(&self, path: &Path) -> io::Result<()> {
            self.inner.remove_file(path)
        }
        fn create_dir_all(&self, path: &Path) -> io::Result<()> {
            self.inner.create_dir_all(path)
        }
        fn sync_dir(&self, path: &Path) -> io::Result<()> {
            self.maybe_fail()?;
            self.inner.sync_dir(path)
        }
    }

    fn policy() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(5),
        }
    }

    #[test]
    fn transient_rename_is_retried_with_recorded_backoff() {
        let mem = MemVfs::new();
        mem.create(Path::new("/a")).unwrap();
        let flaky = FlakyVfs::new(mem.clone(), io::ErrorKind::Interrupted, 2);
        let clock = Arc::new(TestClock::new());
        let vfs = RetryVfs::with_clock(Arc::new(flaky), policy(), clock.clone());
        vfs.rename(Path::new("/a"), Path::new("/b")).unwrap();
        assert!(mem.exists(Path::new("/b")));
        // Two transient failures → two sleeps: base, then base*2 capped.
        assert_eq!(
            clock.slept(),
            vec![Duration::from_millis(2), Duration::from_millis(4)]
        );
        assert_eq!(vfs.retries_absorbed(), 2);
    }

    #[test]
    fn permanent_failure_surfaces_immediately_without_sleeping() {
        let mem = MemVfs::new();
        mem.create(Path::new("/a")).unwrap();
        let flaky = FlakyVfs::new(mem, io::ErrorKind::Other, 1);
        let clock = Arc::new(TestClock::new());
        let vfs = RetryVfs::with_clock(Arc::new(flaky), policy(), clock.clone());
        let err = vfs.rename(Path::new("/a"), Path::new("/b")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Other);
        assert!(
            clock.slept().is_empty(),
            "permanent errors must not back off"
        );
        assert_eq!(vfs.retries_absorbed(), 0);
    }

    #[test]
    fn exhausted_retries_surface_the_transient_error() {
        let mem = MemVfs::new();
        mem.create(Path::new("/a")).unwrap();
        let flaky = FlakyVfs::new(mem.clone(), io::ErrorKind::TimedOut, 10);
        let clock = Arc::new(TestClock::new());
        let vfs = RetryVfs::with_clock(Arc::new(flaky), policy(), clock.clone());
        let err = vfs.rename(Path::new("/a"), Path::new("/b")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert_eq!(clock.slept().len(), 3, "max_retries sleeps, then give up");
        assert!(mem.exists(Path::new("/a")), "failed rename must not move");
    }

    #[test]
    fn sync_dir_retries_and_backoff_caps() {
        let mem = MemVfs::new();
        let flaky = FlakyVfs::new(mem, io::ErrorKind::WouldBlock, 3);
        let clock = Arc::new(TestClock::new());
        let vfs = RetryVfs::with_clock(Arc::new(flaky), policy(), clock.clone());
        vfs.sync_dir(Path::new("/")).unwrap();
        // base 2ms, 4ms, then 8ms capped to 5ms.
        assert_eq!(
            clock.slept(),
            vec![
                Duration::from_millis(2),
                Duration::from_millis(4),
                Duration::from_millis(5)
            ]
        );
    }

    #[test]
    fn backoff_schedule_is_monotone_and_capped() {
        let p = RetryPolicy {
            max_retries: 10,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
        };
        let mut prev = Duration::ZERO;
        for r in 0..10 {
            let b = p.backoff(r);
            assert!(b >= prev && b <= p.max_backoff);
            prev = b;
        }
        assert_eq!(p.backoff(9), Duration::from_millis(50));
    }
}
