//! Property tests: save/load roundtrips for arbitrary tree contents.

use phtree::PhTree;
use proptest::prelude::*;

fn tmp(name: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("phstore-prop");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("t{name}.pht"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn roundtrip_any_contents(
        entries in proptest::collection::btree_map(
            prop_oneof![
                [0u64..16, 0u64..16, 0u64..16],
                [any::<u64>(), any::<u64>(), any::<u64>()],
            ],
            any::<u64>(),
            0..200,
        ),
        file_id in any::<u64>(),
    ) {
        let path = tmp(file_id);
        let mut t: PhTree<u64, 3> = PhTree::new();
        for (&k, &v) in &entries {
            t.insert(k, v);
        }
        // Loaded trees are rebuilt at exact capacity; shrink the source
        // so the byte-level stats comparison below is apples to apples.
        t.shrink_to_fit();
        phstore::save(&t, &path).unwrap();
        let u: PhTree<u64, 3> = phstore::load(&path).unwrap();
        u.check_invariants();
        prop_assert_eq!(u.len(), entries.len());
        for (&k, &v) in &entries {
            prop_assert_eq!(u.get(&k), Some(&v));
        }
        // Statistics (and therefore the in-memory layout) survive too.
        prop_assert_eq!(t.stats(), u.stats());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn roundtrip_string_values(
        entries in proptest::collection::btree_map(
            [0u64..64, 0u64..64],
            ".*",
            0..60,
        ),
        file_id in any::<u64>(),
    ) {
        let path = tmp(file_id ^ 0x5151);
        let mut t: PhTree<String, 2> = PhTree::new();
        for (&k, v) in &entries {
            t.insert(k, v.clone());
        }
        phstore::save(&t, &path).unwrap();
        let u: PhTree<String, 2> = phstore::load(&path).unwrap();
        for (&k, v) in &entries {
            prop_assert_eq!(u.get(&k), Some(v));
        }
        std::fs::remove_file(&path).ok();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random single-byte corruption anywhere in the file must never
    /// yield a *wrong* tree: either loading errors out, or — when the
    /// flip hits unused page slack — the loaded tree is exactly the
    /// original.
    #[test]
    fn corruption_is_detected_or_harmless(
        flip_pos in any::<u64>(),
        flip_bit in 0u8..8,
        file_id in any::<u64>(),
    ) {
        let path = tmp(file_id ^ 0xC0DE);
        let mut t: PhTree<u64, 2> = PhTree::new();
        for i in 0..400u64 {
            t.insert([i % 37, i.wrapping_mul(0x9E37) % 251], i);
        }
        phstore::save(&t, &path).unwrap();
        {
            let mut bytes = std::fs::read(&path).unwrap();
            let pos = (flip_pos as usize) % bytes.len();
            bytes[pos] ^= 1 << flip_bit;
            std::fs::write(&path, bytes).unwrap();
        }
        match phstore::load::<u64, 2>(&path) {
            Err(_) => {} // detected — good
            Ok(u) => {
                // Flip landed in slack: contents must be untouched.
                u.check_invariants();
                prop_assert_eq!(u.len(), t.len());
                for (k, v) in t.iter() {
                    prop_assert_eq!(u.get(&k), Some(v));
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }
}
