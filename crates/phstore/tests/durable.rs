//! Differential property tests for [`phstore::Durable`]: random
//! workloads run through the durable store must behave exactly like an
//! in-memory [`phtree::PhTree`] and a [`BTreeMap`] model — across
//! reopens, forced checkpoints, and randomly placed crashes.

use phstore::durable::{Durable, DurableConfig};
use phstore::vfs::{FaultConfig, FaultVfs, MemVfs};
use phtree::PhTree;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

type RawOp = (u8, u64, u64, u32);

fn op_strategy() -> impl Strategy<Value = Vec<RawOp>> {
    // Small key universe so removes and overwrites hit existing keys.
    proptest::collection::vec((0u8..10, 0u64..48, 0u64..48, any::<u32>()), 0..300)
}

fn config(checkpoint_bytes: u64) -> DurableConfig {
    DurableConfig {
        checkpoint_bytes,
        sync_writes: true,
        retry: None,
    }
}

fn open(vfs: &MemVfs, checkpoint_bytes: u64) -> Durable<u32, 2> {
    Durable::open_with(
        Arc::new(vfs.clone()),
        Path::new("/db"),
        config(checkpoint_bytes),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The durable store, a plain tree and a BTreeMap stay in lockstep
    /// over any op sequence, with periodic reopens (full recovery) and
    /// auto-checkpoints in between.
    #[test]
    fn durable_matches_memory_with_reopens(
        ops in op_strategy(),
        reopen_every in 1usize..60,
        checkpoint_bytes in 256u64..8192,
    ) {
        let vfs = MemVfs::new();
        let mut d = open(&vfs, checkpoint_bytes);
        let mut plain: PhTree<u32, 2> = PhTree::new();
        let mut model: BTreeMap<[u64; 2], u32> = BTreeMap::new();
        for (i, &(tag, x, y, v)) in ops.iter().enumerate() {
            let key = [x, y];
            if tag == 0 {
                let got = d.remove(&key).unwrap();
                prop_assert_eq!(got, plain.remove(&key));
                model.remove(&key);
            } else {
                let got = d.insert(key, v).unwrap();
                prop_assert_eq!(got, plain.insert(key, v));
                model.insert(key, v);
            }
            if (i + 1) % reopen_every == 0 {
                drop(d);
                d = open(&vfs, checkpoint_bytes);
            }
        }
        drop(d);
        let d = open(&vfs, checkpoint_bytes);
        d.tree().check_invariants();
        // The PH-tree is canonical: recovery (snapshot load + op
        // replay) reproduces the *identical* structure, not just the
        // same content.
        prop_assert_eq!(d.tree(), &plain);
        prop_assert_eq!(d.len(), model.len());
        for (&k, &v) in &model {
            prop_assert_eq!(d.get(&k), Some(&v));
        }
    }

    /// Cut the WAL write stream at a random byte and recover: the
    /// result is exactly some prefix of the applied ops, including
    /// every acknowledged one.
    #[test]
    fn random_crash_recovers_a_prefix(
        ops in op_strategy(),
        budget_seed in any::<u64>(),
        checkpoint_bytes in 512u64..4096,
    ) {
        // States after every prefix, for matching post-recovery.
        let mut states = vec![BTreeMap::new()];
        {
            let mut model: BTreeMap<[u64; 2], u32> = BTreeMap::new();
            for &(tag, x, y, v) in &ops {
                if tag == 0 {
                    model.remove(&[x, y]);
                } else {
                    model.insert([x, y], v);
                }
                states.push(model.clone());
            }
        }

        // Probe run to size the WAL stream, then place the cut.
        let probe_vfs = MemVfs::new();
        let probe = FaultVfs::new(Arc::new(probe_vfs.clone()), FaultConfig {
            target: Some("wal".into()),
            ..Default::default()
        });
        {
            let mut d: Durable<u32, 2> = Durable::open_with(
                Arc::new(probe.clone()),
                Path::new("/db"),
                config(checkpoint_bytes),
            ).unwrap();
            for &(tag, x, y, v) in &ops {
                if tag == 0 { d.remove(&[x, y]).unwrap(); } else { d.insert([x, y], v).unwrap(); }
            }
        }
        let total = probe.bytes_written();
        let budget = budget_seed % (total + 1);

        let mem = MemVfs::new();
        let faulty = FaultVfs::new(Arc::new(mem.clone()), FaultConfig {
            target: Some("wal".into()),
            write_budget: Some(budget),
            ..Default::default()
        });
        let mut acked = 0usize;
        if let Ok(mut d) = Durable::<u32, 2>::open_with(
            Arc::new(faulty),
            Path::new("/db"),
            config(checkpoint_bytes),
        ) {
            for &(tag, x, y, v) in &ops {
                let r = if tag == 0 { d.remove(&[x, y]) } else { d.insert([x, y], v) };
                if r.is_err() { break; }
                acked += 1;
            }
        }

        let d = Durable::<u32, 2>::open_with(
            Arc::new(mem),
            Path::new("/db"),
            config(checkpoint_bytes),
        ).unwrap();
        d.tree().check_invariants();
        let matched = (acked..=ops.len()).any(|n| {
            let s = &states[n];
            d.len() == s.len() && d.iter().all(|(k, &v)| s.get(&k) == Some(&v))
        });
        prop_assert!(matched, "recovered state is not a prefix ≥ acked={} (budget {budget})", acked);
    }
}
