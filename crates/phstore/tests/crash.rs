//! Deterministic crash-point sweep over the durability layer.
//!
//! The central test cuts the WAL write stream at **every byte offset**
//! of a 500+-op workload and replays recovery after each cut, asserting
//! the recovered tree is exactly a prefix of the acknowledged history
//! (never more than was written, never less than was acknowledged, and
//! always structurally valid). Companion tests kill the process inside
//! the checkpoint rotation (snapshot writes, the rename itself) and
//! flip bits in the log.
//!
//! The workload and the fault injector are fully deterministic, so a
//! failure here is a reproducible counterexample, not a flake.

use phstore::durable::{Durable, DurableConfig};
use phstore::vfs::{FaultConfig, FaultVfs, MemVfs, Vfs};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

const N_OPS: usize = 520;
const CHECKPOINT_BYTES: u64 = 4096; // several rotations over the run

type Key = [u64; 2];
type Model = BTreeMap<Key, u32>;

/// The deterministic workload: inserts, overwrites and removes over a
/// smallish key universe (so overwrites/removes actually hit).
fn workload() -> Vec<(bool, Key, u32)> {
    let mut x = 0x2545_F491_4F6C_DD1Du64;
    let mut ops = Vec::with_capacity(N_OPS);
    for i in 0..N_OPS {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let key = [(x >> 16) % 64, (x >> 40) % 64];
        let is_remove = x.is_multiple_of(5);
        ops.push((is_remove, key, i as u32));
    }
    ops
}

fn config() -> DurableConfig {
    DurableConfig {
        checkpoint_bytes: CHECKPOINT_BYTES,
        sync_writes: true,
        retry: None,
    }
}

fn apply_model(model: &mut Model, op: &(bool, Key, u32)) {
    let (is_remove, key, value) = *op;
    if is_remove {
        model.remove(&key);
    } else {
        model.insert(key, value);
    }
}

fn assert_tree_is_model(d: &Durable<u32, 2>, model: &Model, ctx: &str) {
    d.tree().check_invariants();
    assert_eq!(d.len(), model.len(), "{ctx}: size mismatch");
    for (k, &v) in d.iter() {
        assert_eq!(model.get(&k), Some(&v), "{ctx}: key {k:?}");
    }
}

fn tree_equals_model(d: &Durable<u32, 2>, model: &Model) -> bool {
    d.len() == model.len() && d.iter().all(|(k, &v)| model.get(&k) == Some(&v))
}

/// Model state after every prefix of the workload: `states[n]` is the
/// state after the first `n` ops.
fn model_states(ops: &[(bool, Key, u32)]) -> Vec<Model> {
    let mut states = vec![Model::new()];
    let mut model = Model::new();
    for op in ops {
        apply_model(&mut model, op);
        states.push(model.clone());
    }
    states
}

/// Fault-free reference run. Returns the model state after every op
/// count (`states[n]` = model after `n` ops), the op count at which
/// each generation's checkpoint completed (`cp[g]`), and the total
/// bytes written to WAL files (the sweep space).
fn reference_run() -> (Vec<Model>, Vec<usize>, u64) {
    let mem = MemVfs::new();
    let probe = FaultVfs::new(
        Arc::new(mem),
        FaultConfig {
            target: Some("wal".into()),
            ..Default::default()
        },
    );
    let mut d: Durable<u32, 2> =
        Durable::open_with(Arc::new(probe.clone()), Path::new("/db"), config()).unwrap();
    let mut states = vec![Model::new()];
    let mut model = Model::new();
    // Generation g's checkpoint completed after cp[g] ops (cp[0] = 0).
    let mut cp = vec![0usize];
    for (n, op) in workload().iter().enumerate() {
        let (is_remove, key, value) = *op;
        if is_remove {
            d.remove(&key).unwrap();
        } else {
            d.insert(key, value).unwrap();
        }
        apply_model(&mut model, op);
        states.push(model.clone());
        while cp.len() <= d.generation() as usize {
            // A checkpoint that fires on op n+1 snapshots the tree
            // *including* that op.
            cp.push(n + 1);
        }
    }
    assert!(
        d.generation() >= 3,
        "workload must span several checkpoints"
    );
    assert_tree_is_model(&d, &model, "reference run");
    (states, cp, probe.bytes_written())
}

/// THE sweep: cut the WAL write stream at every single byte offset,
/// recover, and check prefix consistency.
#[test]
fn wal_crash_sweep_every_byte_offset() {
    let (states, cp, total_wal_bytes) = reference_run();
    assert!(
        total_wal_bytes > 10_000,
        "sweep space too small: {total_wal_bytes}"
    );
    let ops = workload();

    for budget in 0..=total_wal_bytes {
        // -- Crash phase: run the workload until the injected cut.
        let mem = MemVfs::new();
        let faulty = FaultVfs::new(
            Arc::new(mem.clone()),
            FaultConfig {
                target: Some("wal".into()),
                write_budget: Some(budget),
                ..Default::default()
            },
        );
        let mut acked = 0usize;
        match Durable::<u32, 2>::open_with(Arc::new(faulty), Path::new("/db"), config()) {
            Err(_) => {} // crashed during initial WAL creation
            Ok(mut d) => {
                for op in &ops {
                    let (is_remove, key, value) = *op;
                    let res = if is_remove {
                        d.remove(&key)
                    } else {
                        d.insert(key, value)
                    };
                    match res {
                        Ok(_) => acked += 1,
                        Err(_) => break,
                    }
                }
            }
        }

        // -- Recovery phase: reopen the surviving bytes, fault-free.
        let d = Durable::<u32, 2>::open_with(Arc::new(mem), Path::new("/db"), config())
            .unwrap_or_else(|e| panic!("budget {budget}: recovery must not fail: {e}"));
        let stats = d.recovery_stats();
        let g = stats.generation as usize;
        assert!(g < cp.len(), "budget {budget}: unseen generation {g}");
        let n = cp[g] + stats.replayed_ops;

        // Prefix consistency: exactly the first n ops, with every
        // acknowledged op included and nothing beyond the workload.
        assert!(
            n >= acked,
            "budget {budget}: lost acknowledged ops (recovered {n}, acked {acked})"
        );
        assert!(n <= ops.len(), "budget {budget}: phantom ops ({n})");
        assert_tree_is_model(&d, &states[n], &format!("budget {budget}, n={n}"));
    }
}

/// Kill the process mid-checkpoint: cut the *snapshot* write stream at
/// a stride of offsets. Recovery must fall back to the previous
/// generation's snapshot plus the still-intact WAL — losing nothing.
#[test]
fn checkpoint_kill_recovers_previous_generation() {
    let ops = workload();
    let states = model_states(&ops);
    let mut budgets_hit = 0u32;
    for i in 0..60 {
        let budget = 123 + i * 137; // stride across the snapshot stream
        let mem = MemVfs::new();
        let faulty = FaultVfs::new(
            Arc::new(mem.clone()),
            FaultConfig {
                target: Some("snapshot".into()),
                write_budget: Some(budget),
                ..Default::default()
            },
        );
        let mut acked = 0usize;
        // The very first open writes the generation-0 snapshot, so tiny
        // budgets can crash before any op — that is part of the sweep.
        if let Ok(mut d) =
            Durable::<u32, 2>::open_with(Arc::new(faulty.clone()), Path::new("/db"), config())
        {
            for op in &ops {
                let (is_remove, key, value) = *op;
                let res = if is_remove {
                    d.remove(&key)
                } else {
                    d.insert(key, value)
                };
                if res.is_err() {
                    break;
                }
                acked += 1;
            }
        }
        if faulty.crashed() {
            budgets_hit += 1;
        }
        let d = Durable::<u32, 2>::open_with(Arc::new(mem), Path::new("/db"), config())
            .unwrap_or_else(|e| panic!("budget {budget}: recovery failed: {e}"));
        d.tree().check_invariants();
        // A snapshot crash interrupts a checkpoint; the WAL is unharmed,
        // so every acked op survives. The op that *triggered* the
        // crashing checkpoint was journaled before its error, so the
        // recovered state is the model at `acked` or `acked + 1` ops.
        let candidates = [acked, (acked + 1).min(ops.len())];
        assert!(
            candidates
                .iter()
                .any(|&n| tree_equals_model(&d, &states[n])),
            "budget {budget}: state diverged after snapshot crash (acked {acked})"
        );
    }
    assert!(budgets_hit > 10, "stride never hit the snapshot stream");
}

/// Kill the rename that publishes the new snapshot: the old complete
/// snapshot must survive and recovery must proceed from it.
#[test]
fn rename_kill_keeps_old_snapshot() {
    let ops = workload();
    let mem = MemVfs::new();
    // Allow the initial gen-0 snapshot rename, fail the first
    // checkpoint's rename.
    let faulty = FaultVfs::new(
        Arc::new(mem.clone()),
        FaultConfig {
            target: Some("snapshot".into()),
            rename_budget: Some(1),
            ..Default::default()
        },
    );
    let states = model_states(&ops);
    let mut d = Durable::<u32, 2>::open_with(Arc::new(faulty), Path::new("/db"), config()).unwrap();
    let mut crashed_at = None;
    for (n, op) in ops.iter().enumerate() {
        let (is_remove, key, value) = *op;
        let res = if is_remove {
            d.remove(&key)
        } else {
            d.insert(key, value)
        };
        if res.is_err() {
            crashed_at = Some(n);
            break;
        }
    }
    let crashed_at = crashed_at.expect("first checkpoint rename must fail");
    drop(d);
    let d = Durable::<u32, 2>::open_with(Arc::new(mem), Path::new("/db"), config()).unwrap();
    assert_eq!(
        d.generation(),
        0,
        "must recover from the surviving old snapshot"
    );
    // Journal-then-apply: the op whose checkpoint crashed was journaled
    // before the rename failed, so the full WAL replays `crashed_at + 1`
    // ops on top of the old (generation-0, empty) snapshot.
    assert_eq!(d.recovery_stats().replayed_ops, crashed_at + 1);
    assert_tree_is_model(&d, &states[crashed_at + 1], "after rename kill");
}

/// Bit rot inside the WAL: recovery truncates at the damaged frame,
/// keeps the clean prefix, and the store accepts new writes afterwards.
#[test]
fn bit_flip_in_wal_truncates_and_store_keeps_working() {
    let ops = workload();
    for flip_at_frac in [0.3f64, 0.6, 0.95] {
        let mem = MemVfs::new();
        let mut d = Durable::<u32, 2>::open_with(
            Arc::new(mem.clone()),
            Path::new("/db"),
            DurableConfig {
                checkpoint_bytes: u64::MAX, // keep everything in one log
                sync_writes: true,
                retry: None,
            },
        )
        .unwrap();
        let mut states = vec![Model::new()];
        let mut model = Model::new();
        for op in &ops {
            let (is_remove, key, value) = *op;
            if is_remove {
                d.remove(&key).unwrap();
            } else {
                d.insert(key, value).unwrap();
            }
            apply_model(&mut model, op);
            states.push(model.clone());
        }
        let wal_len = d.wal_bytes();
        drop(d);
        let flip_at = (wal_len as f64 * flip_at_frac) as u64;
        assert!(mem.corrupt(Path::new("/db/wal.log"), flip_at, 0x10));

        let mut d = Durable::<u32, 2>::open_with(Arc::new(mem.clone()), Path::new("/db"), config())
            .unwrap_or_else(|e| panic!("flip at {flip_at}: recovery failed: {e}"));
        let stats = d.recovery_stats();
        assert!(
            stats.truncated_bytes > 0,
            "flip at {flip_at}: nothing truncated"
        );
        let n = stats.replayed_ops;
        assert!(n < ops.len(), "flip at {flip_at}: scan must stop early");
        assert_tree_is_model(&d, &states[n], &format!("flip at {flip_at}"));

        // The store is live again: append past the healed tail.
        d.insert([1000, 1000], 424242).unwrap();
        drop(d);
        let d = Durable::<u32, 2>::open_with(Arc::new(mem), Path::new("/db"), config()).unwrap();
        assert_eq!(d.get(&[1000, 1000]), Some(&424242));
        d.tree().check_invariants();
    }
}

/// Total loss of the WAL file (deleted, not torn): the snapshot alone
/// must still open, at its checkpointed state.
#[test]
fn missing_wal_recovers_snapshot_state() {
    let ops = workload();
    let mem = MemVfs::new();
    let mut d =
        Durable::<u32, 2>::open_with(Arc::new(mem.clone()), Path::new("/db"), config()).unwrap();
    for op in &ops {
        let (is_remove, key, value) = *op;
        if is_remove {
            d.remove(&key).unwrap();
        } else {
            d.insert(key, value).unwrap();
        }
    }
    let generation = d.generation();
    drop(d);
    mem.remove_file(Path::new("/db/wal.log")).unwrap();
    let d = Durable::<u32, 2>::open_with(Arc::new(mem), Path::new("/db"), config()).unwrap();
    assert_eq!(d.generation(), generation);
    assert_eq!(d.recovery_stats().replayed_ops, 0);
    d.tree().check_invariants();
}
