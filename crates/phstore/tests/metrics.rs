//! Integration tests for the durability layer's instrument wiring:
//! WAL append/fsync accounting, checkpoint telemetry, and recovery
//! telemetry (replay, bulk fast path, torn tails, stale WALs).

use phmetrics::Registry;
use phstore::vfs::MemVfs;
use phstore::wal::WAL_HEADER;
use phstore::{Durable, DurableConfig, StoreMetrics};
use std::path::Path;
use std::sync::Arc;

fn open(vfs: &MemVfs, reg: &Registry) -> Durable<u32, 2> {
    Durable::open_observed(
        Arc::new(vfs.clone()),
        Path::new("/db"),
        DurableConfig {
            checkpoint_bytes: 1 << 20,
            sync_writes: true,
            retry: None,
        },
        StoreMetrics::from_registry(reg),
    )
    .unwrap()
}

#[test]
fn wal_and_checkpoint_telemetry() {
    let vfs = MemVfs::new();
    let reg = Registry::new();
    let mut d = open(&vfs, &reg);
    for i in 0..80u64 {
        d.insert([i, i * 3], i as u32).unwrap();
    }
    d.remove(&[0, 0]).unwrap();

    let snap = reg.snapshot();
    assert_eq!(snap.counter("phstore_wal_append_frames_total"), Some(81));
    let bytes = snap.counter("phstore_wal_append_bytes_total").unwrap();
    assert_eq!(bytes, d.wal_bytes() - WAL_HEADER);
    // Every append fsynced (sync_writes), so the latency histogram saw
    // at least one sample per frame.
    let fsync = snap.histogram("phstore_wal_fsync_ns").expect("fsync hist");
    assert!(fsync.count() >= 81, "fsyncs: {}", fsync.count());

    d.checkpoint().unwrap();
    let snap = reg.snapshot();
    assert_eq!(snap.counter("phstore_checkpoints_total"), Some(1));
    assert!(snap.counter("phstore_checkpoint_bytes_total").unwrap() >= 4096);
    assert_eq!(snap.histogram("phstore_checkpoint_ns").unwrap().count(), 1);
    // The rotated WAL keeps recording: append volume grows again.
    d.insert([500, 501], 7).unwrap();
    let snap2 = reg.snapshot();
    assert_eq!(snap2.counter("phstore_wal_append_frames_total"), Some(82));
}

#[test]
fn recovery_telemetry_replay_and_bulk_fast_path() {
    let vfs = MemVfs::new();
    let reg = Registry::new();
    {
        let mut d = open(&vfs, &reg);
        for i in 0..60u64 {
            d.insert([i, i], i as u32).unwrap();
        }
        d.remove(&[3, 3]).unwrap();
    } // dropped without checkpoint: everything lives in the WAL

    let reg2 = Registry::new();
    let d = open(&vfs, &reg2);
    assert_eq!(d.len(), 59);
    let stats = d.recovery_stats();
    assert_eq!(stats.replayed_ops, 61);
    // The leading 60 inserts replay onto an empty tree via bulk load.
    assert_eq!(stats.bulk_replayed, 60);
    let snap = reg2.snapshot();
    assert_eq!(
        snap.counter("phstore_recovery_replayed_ops_total"),
        Some(61)
    );
    assert_eq!(
        snap.counter("phstore_recovery_bulk_replayed_total"),
        Some(60)
    );
    assert_eq!(
        snap.counter("phstore_recovery_torn_tail_truncations_total"),
        Some(0)
    );
}

#[test]
fn recovery_telemetry_torn_tail() {
    let vfs = MemVfs::new();
    let reg = Registry::new();
    {
        let mut d = open(&vfs, &reg);
        for i in 0..20u64 {
            d.insert([i, i + 1], i as u32).unwrap();
        }
    }
    // Tear the last few bytes off the log, mid-frame.
    let wal_path = Path::new("/db/wal.log");
    let full = vfs.read_file(wal_path).unwrap();
    vfs.write_file(wal_path, full[..full.len() - 5].to_vec());

    let reg2 = Registry::new();
    let d = open(&vfs, &reg2);
    let stats = d.recovery_stats();
    assert_eq!(stats.replayed_ops, 19, "last op torn away");
    assert!(stats.truncated_bytes > 0);
    let snap = reg2.snapshot();
    assert_eq!(
        snap.counter("phstore_recovery_torn_tail_truncations_total"),
        Some(1)
    );
    assert_eq!(
        snap.counter("phstore_recovery_truncated_bytes_total"),
        Some(stats.truncated_bytes)
    );
}

#[test]
fn recovery_telemetry_stale_wal() {
    let vfs = MemVfs::new();
    let reg = Registry::new();
    let wal_path = Path::new("/db/wal.log");
    {
        let mut d = open(&vfs, &reg);
        for i in 0..10u64 {
            d.insert([i, i], i as u32).unwrap();
        }
        // Keep a copy of the generation-0 log, checkpoint to
        // generation 1, then put the old log back — simulating a crash
        // that left a pre-rotation WAL behind.
        let old = vfs.read_file(wal_path).unwrap();
        d.checkpoint().unwrap();
        drop(d);
        vfs.write_file(wal_path, old);
    }
    let reg2 = Registry::new();
    let d = open(&vfs, &reg2);
    assert!(d.recovery_stats().reset_stale_wal);
    assert_eq!(d.len(), 10, "stale ops already in the snapshot");
    let snap = reg2.snapshot();
    assert_eq!(snap.counter("phstore_recovery_stale_wals_total"), Some(1));
    assert_eq!(snap.counter("phstore_recovery_replayed_ops_total"), Some(0));
}
