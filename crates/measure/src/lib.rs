//! Measurement harness: wall-clock timing helpers and paper-style table
//! printing for the PH-tree evaluation.
//!
//! The space numbers come from each structure's own exact byte
//! accounting (see the `memory_bytes`/`stats` methods of the index
//! crates); this crate only supplies the glue: timers that report
//! µs-per-operation the way the paper's figures do, and text/CSV table
//! printers that emit one row per x-axis point.

#![warn(missing_docs)]

use std::time::Instant;

#[cfg(feature = "alloc-track")]
pub mod alloc_track;

/// Times `f` and returns (result, elapsed microseconds).
pub fn time_us<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64() * 1e6)
}

/// Times `f` and returns microseconds per item for `n` items — the
/// paper's "µs per entry" / "µs per query" metric.
pub fn time_us_per<T>(n: usize, f: impl FnOnce() -> T) -> (T, f64) {
    let (r, us) = time_us(f);
    (r, if n == 0 { 0.0 } else { us / n as f64 })
}

/// A result table in the paper's style: a labelled x-axis and one named
/// series per structure, printed as aligned text and as CSV.
///
/// ```
/// let mut t = measure::Table::new("fig-7b insert", "10^6 entries");
/// t.add_row(1.0, &[("PH", Some(0.8)), ("KD1", Some(0.9))]);
/// t.add_row(10.0, &[("PH", Some(0.9)), ("KD1", Some(1.8))]);
/// let text = t.render_text();
/// assert!(text.contains("PH"));
/// let csv = t.render_csv();
/// assert!(csv.starts_with("x,PH,KD1"));
/// ```
pub struct Table {
    title: String,
    x_label: String,
    columns: Vec<String>,
    rows: Vec<(f64, Vec<Option<f64>>)>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, x_label: &str) -> Self {
        Table {
            title: title.to_string(),
            x_label: x_label.to_string(),
            columns: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Columns are created on first use; series may be
    /// missing in some rows (`None` renders as `-`), e.g. kD-trees that
    /// were only measured up to a smaller `n` (paper Fig. 9c).
    pub fn add_row(&mut self, x: f64, cells: &[(&str, Option<f64>)]) {
        for (name, _) in cells {
            if !self.columns.iter().any(|c| c == name) {
                self.columns.push(name.to_string());
            }
        }
        let mut row = vec![None; self.columns.len()];
        for (name, v) in cells {
            let i = self.columns.iter().position(|c| c == name).unwrap();
            row[i] = *v;
        }
        self.rows.push((x, row));
    }

    /// Renders an aligned text table with the title.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let mut header = vec![self.x_label.clone()];
        header.extend(self.columns.iter().cloned());
        let mut cells: Vec<Vec<String>> = vec![header];
        for (x, row) in &self.rows {
            let mut r = vec![format_num(*x)];
            for c in 0..self.columns.len() {
                r.push(match row.get(c).copied().flatten() {
                    Some(v) => format_num(v),
                    None => "-".to_string(),
                });
            }
            cells.push(r);
        }
        let ncols = cells.iter().map(|r| r.len()).max().unwrap_or(0);
        let widths: Vec<usize> = (0..ncols)
            .map(|c| {
                cells
                    .iter()
                    .filter_map(|r| r.get(c))
                    .map(|s| s.len())
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        for r in &cells {
            for (c, s) in r.iter().enumerate() {
                out.push_str(&format!("{:>w$}  ", s, w = widths[c]));
            }
            out.push('\n');
        }
        out
    }

    /// Renders CSV (`x,<col>,<col>…`, one row per x).
    pub fn render_csv(&self) -> String {
        let mut out = String::from("x");
        for c in &self.columns {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for (x, row) in &self.rows {
            out.push_str(&format!("{x}"));
            for c in 0..self.columns.len() {
                out.push(',');
                if let Some(v) = row.get(c).copied().flatten() {
                    out.push_str(&format!("{v}"));
                }
            }
            out.push('\n');
        }
        out
    }
}

fn format_num(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else if v.abs() >= 0.01 {
        format!("{v:.3}")
    } else {
        format!("{v:.2e}")
    }
}

/// Parses a simple `--flag value` style CLI for the repro binaries.
///
/// ```
/// let args = vec!["--scale".to_string(), "0.1".to_string()];
/// let cli = measure::Cli::parse(args.into_iter());
/// assert_eq!(cli.get_f64("scale", 1.0), 0.1);
/// assert_eq!(cli.get_u64("seed", 42), 42);
/// ```
#[derive(Debug, Default)]
pub struct Cli {
    pairs: Vec<(String, String)>,
}

impl Cli {
    /// Parses `--key value` pairs from an argument iterator.
    pub fn parse(mut args: impl Iterator<Item = String>) -> Self {
        let mut pairs = Vec::new();
        while let Some(a) = args.next() {
            if let Some(key) = a.strip_prefix("--") {
                if let Some(v) = args.next() {
                    pairs.push((key.to_string(), v));
                }
            }
        }
        Cli { pairs }
    }

    /// Parses the process arguments (skipping the binary name).
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Float flag with default.
    pub fn get_f64(&self, key: &str, default: f64) -> f64 {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Integer flag with default.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// String flag with default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.get(key).unwrap_or(default).to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_reports_positive_time() {
        let (x, us) = time_us(|| (0..10_000).sum::<u64>());
        assert_eq!(x, 49995000);
        assert!(us >= 0.0);
        let (_, per) = time_us_per(100, || std::hint::black_box(7));
        assert!(per >= 0.0);
    }

    #[test]
    fn table_renders_missing_cells() {
        let mut t = Table::new("t", "n");
        t.add_row(1.0, &[("A", Some(1.0))]);
        t.add_row(2.0, &[("A", Some(2.0)), ("B", Some(3.0))]);
        let text = t.render_text();
        assert!(text.contains('-'), "{text}");
        let csv = t.render_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.lines().nth(1).unwrap().ends_with(','));
    }

    #[test]
    fn cli_parsing_defaults_and_overrides() {
        let cli = Cli::parse(
            ["--scale", "2.5", "--dataset", "cube", "--scale", "3.0"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(cli.get_f64("scale", 1.0), 3.0); // last wins
        assert_eq!(cli.get_str("dataset", "tiger"), "cube");
        assert_eq!(cli.get_u64("missing", 9), 9);
    }
}
