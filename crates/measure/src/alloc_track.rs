//! An allocation-counting global allocator (feature `alloc-track`).
//!
//! [`CountingAlloc`] wraps the system allocator and keeps three global
//! counters: cumulative allocation events, live heap bytes and live
//! blocks. Installing it in a benchmark or test binary
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: measure::alloc_track::CountingAlloc =
//!     measure::alloc_track::CountingAlloc;
//! ```
//!
//! lets two kinds of measurements be made without any instrumentation
//! in the code under test:
//!
//! * **allocation rate** — the delta of [`AllocSnapshot::allocs`]
//!   across a workload (e.g. allocations per inserted entry);
//! * **exact heap footprint** — build a structure, snapshot, drop it,
//!   snapshot again: the fall in `live_bytes`/`live_blocks` is exactly
//!   the heap the structure owned, which the `phtree` test-suite checks
//!   against the tree's own structural accounting.
//!
//! Counters are process-global; measurements are only meaningful in a
//! single-threaded section (run such tests with `--test-threads=1` or
//! one test per binary).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};

static ALLOCS: AtomicUsize = AtomicUsize::new(0);
static LIVE_BYTES: AtomicUsize = AtomicUsize::new(0);
static LIVE_BLOCKS: AtomicUsize = AtomicUsize::new(0);

/// A [`GlobalAlloc`] that forwards to [`System`] and counts.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            ALLOCS.fetch_add(1, Relaxed);
            LIVE_BYTES.fetch_add(layout.size(), Relaxed);
            LIVE_BLOCKS.fetch_add(1, Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        LIVE_BYTES.fetch_sub(layout.size(), Relaxed);
        LIVE_BLOCKS.fetch_sub(1, Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            // One allocation event; the block count is unchanged.
            ALLOCS.fetch_add(1, Relaxed);
            LIVE_BYTES.fetch_add(new_size, Relaxed);
            LIVE_BYTES.fetch_sub(layout.size(), Relaxed);
        }
        p
    }
}

/// A point-in-time reading of the global counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Cumulative allocation events (allocs + reallocs) so far.
    pub allocs: usize,
    /// Heap bytes currently live.
    pub live_bytes: usize,
    /// Heap blocks currently live.
    pub live_blocks: usize,
}

/// Reads the counters.
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocs: ALLOCS.load(Relaxed),
        live_bytes: LIVE_BYTES.load(Relaxed),
        live_blocks: LIVE_BLOCKS.load(Relaxed),
    }
}

impl AllocSnapshot {
    /// Allocation events since `earlier`.
    pub fn allocs_since(&self, earlier: &AllocSnapshot) -> usize {
        self.allocs - earlier.allocs
    }

    /// Net live-byte growth since `earlier` (saturating: a shrink
    /// reads as 0).
    pub fn bytes_since(&self, earlier: &AllocSnapshot) -> usize {
        self.live_bytes.saturating_sub(earlier.live_bytes)
    }

    /// Net live-block growth since `earlier` (saturating).
    pub fn blocks_since(&self, earlier: &AllocSnapshot) -> usize {
        self.live_blocks.saturating_sub(earlier.live_blocks)
    }
}
