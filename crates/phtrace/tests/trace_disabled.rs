//! The zero-cost contract with the `trace` feature **off**: every
//! type is a ZST, every call a no-op, nothing installs — the
//! compile-time half of the disabled-path overhead gate (the runtime
//! half is the interleaved A/B fig7/fig8 run in CI).

#![cfg(not(feature = "trace"))]

use phtrace::{PayloadCounter, Phase, TraceConfig, TraceOp};

#[test]
fn everything_is_zero_sized_and_inert() {
    assert_eq!(std::mem::size_of::<phtrace::TraceCtx>(), 0);
    assert_eq!(std::mem::size_of::<phtrace::CtxGuard>(), 0);
    assert_eq!(std::mem::size_of::<phtrace::SpanGuard>(), 0);

    assert!(!phtrace::install(TraceConfig::default()));
    assert!(!phtrace::installed());
    assert_eq!(phtrace::now_ns(), 0);

    let ctx = phtrace::start_request(42, TraceOp::Query);
    assert!(!ctx.sampled());
    assert_eq!(ctx.req_id(), 0);
    {
        let _g = ctx.attach();
        let _sp = phtrace::span(Phase::FanOut).with_shard(3);
        phtrace::add(PayloadCounter::Fanout, 4);
        phtrace::add_nodes(10);
        phtrace::add_pages(2);
    }
    phtrace::record_queue_wait(ctx, 0, 7);
    phtrace::finish_root(ctx, 0);
    phtrace::trigger_dump("nothing happens");

    assert!(phtrace::recent(10).is_empty());
    assert!(phtrace::recent_slow().is_empty());
    assert!(phtrace::dumps().is_empty());
    assert_eq!(phtrace::slow_json(), "[]");
    assert_eq!(phtrace::trace_json(10), "[]");
    assert_eq!(phtrace::dumps_json(), "[]");

    let st = phtrace::stats();
    assert!(!st.installed);
    assert_eq!(st.sampled_requests, 0);
    assert_eq!(st.records, 0);
}
