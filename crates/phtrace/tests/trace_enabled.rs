//! End-to-end recorder tests (`--features trace`). The recorder
//! installs once per process (`OnceLock`), so everything shares one
//! serial test body — the same discipline the phmetrics sink tests
//! use for their process-global seam.

#![cfg(feature = "trace")]

use phtrace::{PayloadCounter, Phase, SlowThreshold, TraceConfig, TraceOp};

#[test]
fn recorder_end_to_end() {
    assert!(!phtrace::installed());
    assert!(phtrace::now_ns() < phtrace::now_ns());
    // Pre-install: sampling always declines, nothing records.
    assert!(!phtrace::start_request(1, TraceOp::Get).sampled());

    assert!(phtrace::install(TraceConfig {
        sample_every: 1,
        slow_threshold: SlowThreshold::FixedNs(1), // everything is slow
        ring_slots: 64,
        slow_capacity: 4,
        dump_capacity: 2,
        dump_keep: 16,
        dump_min_interval_ns: 0,
    }));
    assert!(phtrace::installed());
    assert!(!phtrace::install(TraceConfig::default())); // first wins
    assert!(!phtrace::slow_threshold_is_auto());

    // --- one fully instrumented request ------------------------------
    let ctx = phtrace::start_request(77, TraceOp::Query);
    assert!(ctx.sampled());
    assert_eq!(ctx.req_id(), 77);
    let t_enq = phtrace::now_ns();
    std::thread::sleep(std::time::Duration::from_millis(2));
    phtrace::record_queue_wait(ctx, t_enq, 5);
    {
        let _g = ctx.attach();
        let fan = phtrace::span(Phase::FanOut);
        phtrace::add(PayloadCounter::Fanout, 2);
        for shard in [0usize, 3] {
            let _d = phtrace::span(Phase::Descent).with_shard(shard);
            phtrace::add_nodes(11);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        drop(fan);
    }
    phtrace::finish_root(ctx, t_enq);

    let slow = phtrace::recent_slow();
    assert_eq!(slow.len(), 1);
    let e = &slow[0];
    assert_eq!(e.req_id, 77);
    assert_eq!(e.op, TraceOp::Query);
    assert_eq!(e.spans, 4); // queue + fanout + 2 descents
    assert!(e.phase_ns[Phase::Queue as usize] >= 2_000_000);
    assert!(e.phase_ns[Phase::FanOut as usize] >= 2_000_000);
    assert!(e.phase_ns[Phase::Descent as usize] >= 2_000_000);
    assert_eq!(e.counters.nodes, 22);
    assert_eq!(e.counters.fanout, 2);
    assert_eq!(e.counters.queue_depth, 5);
    // Descent is nested inside FanOut: covered (queue + top-level)
    // stays ≤ wall and within 10% of it here (the sleeps dominate).
    assert!(e.covered_ns <= e.wall_ns + e.wall_ns / 10);
    assert!(
        e.covered_ns * 10 >= e.wall_ns * 9,
        "covered {} wall {}",
        e.covered_ns,
        e.wall_ns
    );

    // Records are visible in the flight recorder, newest first.
    let recs = phtrace::recent(16);
    assert!(recs.iter().any(|r| r.phase == Phase::Root));
    let descents: Vec<_> = recs
        .iter()
        .filter(|r| r.phase == Phase::Descent && r.trace_id == e.trace_id)
        .collect();
    assert_eq!(descents.len(), 2);
    assert!(descents.iter().all(|r| r.nested));
    assert!(descents.iter().any(|r| r.shard == 3));
    for w in recs.windows(2) {
        assert!(w[0].t_end_ns >= w[1].t_end_ns);
    }

    // --- spans from another thread land in the same trace -------------
    let ctx2 = phtrace::start_request(78, TraceOp::Knn);
    let t0 = phtrace::now_ns();
    std::thread::scope(|s| {
        s.spawn(|| {
            let _g = ctx2.attach();
            let _d = phtrace::span(Phase::Descent).with_shard(1);
            phtrace::add_nodes(3);
        });
    });
    phtrace::finish_root(ctx2, t0);
    let slow = phtrace::recent_slow();
    let e2 = slow.iter().find(|e| e.req_id == 78).unwrap();
    assert_eq!(e2.counters.nodes, 3);
    assert_eq!(e2.spans, 1);

    // --- unsampled contexts record nothing ----------------------------
    let written_before = phtrace::stats().records;
    let off = phtrace::TraceCtx::off();
    {
        let _g = off.attach();
        let _sp = phtrace::span(Phase::Wal);
        phtrace::add_pages(9);
    }
    phtrace::record_queue_wait(off, 0, 1);
    phtrace::finish_root(off, 0);
    assert_eq!(phtrace::stats().records, written_before);

    // --- slow ring is bounded, oldest dropped --------------------------
    for i in 0..10u64 {
        let c = phtrace::start_request(100 + i, TraceOp::Get);
        phtrace::finish_root(c, 0); // wall = now - 0: always "slow"
    }
    let slow = phtrace::recent_slow();
    assert_eq!(slow.len(), 4); // slow_capacity
    assert_eq!(slow.last().unwrap().req_id, 109);

    // --- trigger dumps: bounded, rate-limit honours interval 0 --------
    phtrace::trigger_dump("shed: queue at high water");
    phtrace::trigger_dump("protocol error: bad checksum");
    phtrace::trigger_dump("scatter task 'query:shard-2' panicked");
    let dumps = phtrace::dumps();
    assert_eq!(dumps.len(), 2); // dump_capacity
    assert!(dumps.last().unwrap().reason.contains("shard-2"));
    assert!(!dumps.last().unwrap().records.is_empty());

    // --- JSON endpoints render ----------------------------------------
    let sj = phtrace::slow_json();
    assert!(sj.starts_with('[') && sj.ends_with(']'));
    assert!(sj.contains("\"phases\":{\"queue\":"));
    let tj = phtrace::trace_json(8);
    assert!(tj.contains("\"phase\":\"root\""));
    let dj = phtrace::dumps_json();
    assert!(dj.contains("scatter task 'query:shard-2' panicked"));

    // --- threshold knob ------------------------------------------------
    phtrace::set_slow_threshold_ns(123_456);
    assert_eq!(phtrace::slow_threshold_ns(), 123_456);

    let st = phtrace::stats();
    assert!(st.installed);
    assert!(st.sampled_requests >= 12);
    assert!(st.records >= 4);
    assert!(st.rings >= 1);
}

/// 1-in-N sampling: run in the same process (shares the installed
/// recorder with `sample_every: 1`), so this test only checks the
/// pre-decision plumbing via a direct tick count.
#[test]
fn json_escaping() {
    let dumps = [phtrace::DumpSnapshot {
        reason: "quote \" slash \\ newline \n".into(),
        at_ns: 1,
        records: vec![],
    }];
    let j = phtrace::json::dumps(&dumps);
    assert!(j.contains("quote \\\" slash \\\\ newline \\n"));
}
