//! Hand-rolled JSON rendering for the `/debug` endpoints (the
//! workspace builds offline — no serde). All numbers are u64, all
//! strings come from fixed enum names except dump reasons, which are
//! escaped.

use crate::{DumpSnapshot, Phase, SlowQuery, SpanRec};
use std::fmt::Write;

/// Escapes a string for a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn span_obj(out: &mut String, s: &SpanRec) {
    let _ = write!(
        out,
        "{{\"trace_id\":{},\"phase\":\"{}\",\"op\":\"{}\",",
        s.trace_id,
        s.phase.name(),
        s.op.name()
    );
    if s.shard != u16::MAX {
        let _ = write!(out, "\"shard\":{},", s.shard);
    }
    let _ = write!(
        out,
        "\"nested\":{},\"t_start_ns\":{},\"t_end_ns\":{},\"dur_ns\":{},\
         \"nodes_visited\":{},\"pages_touched\":{},\"fanout\":{},\"queue_depth\":{}}}",
        s.nested,
        s.t_start_ns,
        s.t_end_ns,
        s.dur_ns(),
        s.counters.nodes,
        s.counters.pages,
        s.counters.fanout,
        s.counters.queue_depth
    );
}

/// Renders flight-recorder records as a JSON array.
pub fn spans(recs: &[SpanRec]) -> String {
    let mut out = String::from("[");
    for (i, s) in recs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        span_obj(&mut out, s);
    }
    out.push(']');
    out
}

/// Renders slow-query entries as a JSON array (newest last).
pub fn slow_queries(entries: &[SlowQuery]) -> String {
    const BREAKDOWN: [Phase; crate::N_BREAKDOWN] = [
        Phase::Queue,
        Phase::FanOut,
        Phase::Descent,
        Phase::Page,
        Phase::Wal,
        Phase::Reply,
    ];
    let mut out = String::from("[");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"req_id\":{},\"trace_id\":{},\"op\":\"{}\",\"t_start_ns\":{},\
             \"wall_ns\":{},\"covered_ns\":{},\"spans\":{},\"phases\":{{",
            e.req_id,
            e.trace_id,
            e.op.name(),
            e.t_start_ns,
            e.wall_ns,
            e.covered_ns,
            e.spans
        );
        for (j, p) in BREAKDOWN.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", p.name(), e.phase_ns[*p as usize]);
        }
        let _ = write!(
            out,
            "}},\"counters\":{{\"nodes_visited\":{},\"pages_touched\":{},\
             \"fanout\":{},\"queue_depth\":{}}}}}",
            e.counters.nodes, e.counters.pages, e.counters.fanout, e.counters.queue_depth
        );
    }
    out.push(']');
    out
}

/// Renders trigger dumps as a JSON array (newest last).
pub fn dumps(snaps: &[DumpSnapshot]) -> String {
    let mut out = String::from("[");
    for (i, d) in snaps.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"reason\":\"{}\",\"at_ns\":{},\"records\":",
            esc(&d.reason),
            d.at_ns
        );
        out.push_str(&spans(&d.records));
        out.push('}');
    }
    out.push(']');
    out
}
