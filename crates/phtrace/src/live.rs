//! The `trace`-feature implementation: global recorder, per-thread
//! ring leases, ambient [`TraceCtx`], span guards, slow-query
//! assembly and trigger dumps.

use crate::json;
use crate::ring::Ring;
use crate::{
    Counters, DumpSnapshot, PayloadCounter, Phase, SlowQuery, SlowThreshold, SpanRec, TraceConfig,
    TraceOp, TraceStats, N_BREAKDOWN,
};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Threshold the `Auto` policy starts at until the server's first
/// retune (trailing p99 × 4).
const AUTO_INITIAL_THRESHOLD_NS: u64 = 10_000_000;

/// Shard value meaning "not shard-scoped".
const NO_SHARD: u16 = u16::MAX;

// ---------------------------------------------------------------- clock

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process trace epoch (the first call), on one
/// monotonic clock — cross-thread comparable, never steps.
#[inline]
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

// ------------------------------------------------------------- recorder

struct Recorder {
    cfg: TraceConfig,
    /// Every ring ever allocated (leased or free) — dumps and slow
    /// assembly scan them all; a dead thread's records stay visible.
    rings: Mutex<Vec<Arc<Ring>>>,
    /// Rings whose owning thread exited, ready for re-lease.
    free: Mutex<Vec<Arc<Ring>>>,
    next_trace_id: AtomicU64,
    sample_tick: AtomicU64,
    threshold_ns: AtomicU64,
    auto_threshold: bool,
    slow: Mutex<VecDeque<SlowQuery>>,
    dumps: Mutex<VecDeque<DumpSnapshot>>,
    last_dump_ns: AtomicU64,
    sampled_total: AtomicU64,
    slow_total: AtomicU64,
    dumps_total: AtomicU64,
}

static RECORDER: OnceLock<Recorder> = OnceLock::new();

#[inline]
fn recorder() -> Option<&'static Recorder> {
    RECORDER.get()
}

/// Installs the process-wide recorder. First call wins; returns
/// whether this call installed it. Until installed, every sampling
/// decision is "no" and the recorder costs a single atomic load per
/// request.
pub fn install(cfg: TraceConfig) -> bool {
    let threshold = match cfg.slow_threshold {
        SlowThreshold::Auto => AUTO_INITIAL_THRESHOLD_NS,
        SlowThreshold::FixedNs(ns) => ns.max(1),
    };
    let auto = matches!(cfg.slow_threshold, SlowThreshold::Auto);
    RECORDER
        .set(Recorder {
            cfg,
            rings: Mutex::new(Vec::new()),
            free: Mutex::new(Vec::new()),
            next_trace_id: AtomicU64::new(1),
            sample_tick: AtomicU64::new(0),
            threshold_ns: AtomicU64::new(threshold),
            auto_threshold: auto,
            slow: Mutex::new(VecDeque::new()),
            dumps: Mutex::new(VecDeque::new()),
            last_dump_ns: AtomicU64::new(0),
            sampled_total: AtomicU64::new(0),
            slow_total: AtomicU64::new(0),
            dumps_total: AtomicU64::new(0),
        })
        .is_ok()
}

/// Whether a recorder is installed.
pub fn installed() -> bool {
    recorder().is_some()
}

/// Current slow-query threshold, ns.
pub fn slow_threshold_ns() -> u64 {
    recorder().map_or(0, |r| r.threshold_ns.load(Ordering::Relaxed))
}

/// Whether the threshold is under `Auto` policy (the server retunes it
/// from trailing p99 × 4).
pub fn slow_threshold_is_auto() -> bool {
    recorder().is_some_and(|r| r.auto_threshold)
}

/// Updates the slow-query threshold (the server's autotune hook).
pub fn set_slow_threshold_ns(ns: u64) {
    if let Some(r) = recorder() {
        r.threshold_ns.store(ns.max(1), Ordering::Relaxed);
    }
}

/// Recorder health counters.
pub fn stats() -> TraceStats {
    match recorder() {
        None => TraceStats::default(),
        Some(r) => {
            let (records, rings) = {
                let rings = r.rings.lock().unwrap();
                (rings.iter().map(|ring| ring.written()).sum(), rings.len())
            };
            TraceStats {
                installed: true,
                sampled_requests: r.sampled_total.load(Ordering::Relaxed),
                records,
                slow_queries: r.slow_total.load(Ordering::Relaxed),
                dumps: r.dumps_total.load(Ordering::Relaxed),
                rings: rings as u64,
                slow_threshold_ns: r.threshold_ns.load(Ordering::Relaxed),
            }
        }
    }
}

// ------------------------------------------------------ thread-local state

/// An open (not yet recorded) span on this thread's stack.
struct OpenSpan {
    phase: Phase,
    shard: u16,
    t_start_ns: u64,
    counters: Counters,
}

/// Returns the leased ring to the free list when the thread exits, so
/// connection-per-thread servers reuse rings instead of growing the
/// registry forever. The ring's records remain readable either way.
struct RingLease(Arc<Ring>);

impl Drop for RingLease {
    fn drop(&mut self) {
        if let Some(r) = recorder() {
            r.free.lock().unwrap().push(Arc::clone(&self.0));
        }
    }
}

#[derive(Default)]
struct Tls {
    ctx: TraceCtx,
    stack: Vec<OpenSpan>,
    lease: Option<RingLease>,
}

thread_local! {
    static TLS: RefCell<Tls> = RefCell::new(Tls::default());
}

fn lease_ring(r: &'static Recorder) -> RingLease {
    if let Some(ring) = r.free.lock().unwrap().pop() {
        return RingLease(ring);
    }
    let ring = Arc::new(Ring::new(r.cfg.ring_slots));
    r.rings.lock().unwrap().push(Arc::clone(&ring));
    RingLease(ring)
}

/// Writes one record on the calling thread's ring.
fn push_record(tls: &mut Tls, rec: &SpanRec) {
    let Some(r) = recorder() else { return };
    if tls.lease.is_none() {
        tls.lease = Some(lease_ring(r));
    }
    tls.lease.as_ref().unwrap().0.push(rec);
}

// ------------------------------------------------------------------ ctx

/// The per-request trace context: the sampling decision plus the ids
/// a record needs. `Copy`, 24 bytes — it travels by value through
/// queues and closures. With the `trace` feature off this is a ZST.
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceCtx {
    trace_id: u64,
    req_id: u64,
    op: u8,
    sampled: bool,
}

impl TraceCtx {
    /// An unsampled context (records nothing).
    #[inline]
    pub fn off() -> TraceCtx {
        TraceCtx::default()
    }

    /// Whether this request is being recorded.
    #[inline]
    pub fn sampled(&self) -> bool {
        self.sampled
    }

    /// The wire request id this context was created with.
    #[inline]
    pub fn req_id(&self) -> u64 {
        self.req_id
    }

    /// The operation this context was created with.
    #[inline]
    pub fn op(&self) -> TraceOp {
        TraceOp::from_u8(self.op)
    }

    /// Makes `self` the calling thread's ambient context until the
    /// guard drops (which restores the previous one). Spans opened via
    /// [`span`] while attached belong to this request — attach before
    /// opening spans and keep the guard alive past their close.
    #[inline]
    pub fn attach(self) -> CtxGuard {
        let prev = TLS.with(|t| {
            let mut t = t.borrow_mut();
            std::mem::replace(&mut t.ctx, self)
        });
        CtxGuard { prev }
    }
}

/// Restores the previously attached [`TraceCtx`] on drop.
pub struct CtxGuard {
    prev: TraceCtx,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        TLS.with(|t| t.borrow_mut().ctx = self.prev);
    }
}

/// The calling thread's ambient context (attach-site for scatter
/// closures: capture it by value, re-attach on the worker).
#[inline]
pub fn current() -> TraceCtx {
    TLS.with(|t| t.borrow().ctx)
}

/// Makes the sampling decision for one request at the wire layer.
/// Unsampled (and pre-install) requests get a dead context; sampled
/// ones get a fresh process-unique trace id.
#[inline]
pub fn start_request(req_id: u64, op: TraceOp) -> TraceCtx {
    let Some(r) = recorder() else {
        return TraceCtx::off();
    };
    let every = r.cfg.sample_every.max(1) as u64;
    let tick = r.sample_tick.fetch_add(1, Ordering::Relaxed);
    if tick % every != 0 {
        return TraceCtx::off();
    }
    r.sampled_total.fetch_add(1, Ordering::Relaxed);
    TraceCtx {
        trace_id: r.next_trace_id.fetch_add(1, Ordering::Relaxed),
        req_id,
        op: op as u8,
        sampled: true,
    }
}

// ---------------------------------------------------------------- spans

/// Closes (records) its span on drop. Inert when the ambient context
/// is unsampled — opening costs one TLS read and a branch.
#[must_use = "a span measures until the guard drops"]
pub struct SpanGuard {
    active: bool,
}

impl SpanGuard {
    /// Tags the open span with a shard slot.
    pub fn with_shard(self, slot: usize) -> SpanGuard {
        if self.active {
            TLS.with(|t| {
                if let Some(top) = t.borrow_mut().stack.last_mut() {
                    top.shard = slot.min(u16::MAX as usize - 1) as u16;
                }
            });
        }
        self
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let t_end = now_ns();
        TLS.with(|t| {
            let mut t = t.borrow_mut();
            let Some(open) = t.stack.pop() else { return };
            let rec = SpanRec {
                trace_id: t.ctx.trace_id,
                phase: open.phase,
                op: TraceOp::from_u8(t.ctx.op),
                shard: open.shard,
                nested: !t.stack.is_empty(),
                t_start_ns: open.t_start_ns,
                t_end_ns: t_end,
                counters: open.counters,
            };
            push_record(&mut t, &rec);
        });
    }
}

/// Opens a span of `phase` against the ambient context, starting now.
#[inline]
pub fn span(phase: Phase) -> SpanGuard {
    span_at(phase, u64::MAX)
}

/// Opens a span with an explicit start timestamp (`u64::MAX` = now) —
/// the cross-thread case: e.g. a worker accounting queue wait that
/// began on the reader thread.
#[inline]
pub fn span_at(phase: Phase, t_start_ns: u64) -> SpanGuard {
    TLS.with(|t| {
        let mut t = t.borrow_mut();
        if !t.ctx.sampled {
            return SpanGuard { active: false };
        }
        let t_start = if t_start_ns == u64::MAX {
            now_ns()
        } else {
            t_start_ns
        };
        t.stack.push(OpenSpan {
            phase,
            shard: NO_SHARD,
            t_start_ns: t_start,
            counters: Counters::default(),
        });
        SpanGuard { active: true }
    })
}

/// Adds `n` to counter `c` of the innermost open span on this thread
/// (dropped when no span is open — e.g. an unsampled request).
#[inline]
pub fn add(c: PayloadCounter, n: u64) {
    TLS.with(|t| {
        let mut t = t.borrow_mut();
        if let Some(top) = t.stack.last_mut() {
            let n = n.min(u32::MAX as u64) as u32;
            let slot = match c {
                PayloadCounter::Nodes => &mut top.counters.nodes,
                PayloadCounter::Pages => &mut top.counters.pages,
                PayloadCounter::Fanout => &mut top.counters.fanout,
                PayloadCounter::QueueDepth => &mut top.counters.queue_depth,
            };
            *slot = slot.saturating_add(n);
        }
    });
}

/// [`add`]`(PayloadCounter::Nodes, n)` — the `TreeSink` forwarding
/// hook.
#[inline]
pub fn add_nodes(n: u64) {
    add(PayloadCounter::Nodes, n);
}

/// [`add`]`(PayloadCounter::Pages, n)` — the page-cache hook.
#[inline]
pub fn add_pages(n: u64) {
    add(PayloadCounter::Pages, n);
}

/// Records `ctx`'s queue-wait span (admission at `t_enq_ns` → now, on
/// the popping worker's ring) without needing the context attached.
#[inline]
pub fn record_queue_wait(ctx: TraceCtx, t_enq_ns: u64, depth: u32) {
    if !ctx.sampled {
        return;
    }
    let rec = SpanRec {
        trace_id: ctx.trace_id,
        phase: Phase::Queue,
        op: TraceOp::from_u8(ctx.op),
        shard: NO_SHARD,
        nested: false,
        t_start_ns: t_enq_ns,
        t_end_ns: now_ns(),
        counters: Counters {
            queue_depth: depth,
            ..Counters::default()
        },
    };
    TLS.with(|t| push_record(&mut t.borrow_mut(), &rec));
}

/// Closes `ctx`'s root span (admission at `t_start_ns` → now): writes
/// the root record and, when the wall time crosses the slow
/// threshold, assembles the request's spans from every ring into a
/// [`SlowQuery`] breakdown.
pub fn finish_root(ctx: TraceCtx, t_start_ns: u64) {
    if !ctx.sampled {
        return;
    }
    let Some(r) = recorder() else { return };
    let t_end = now_ns();
    let rec = SpanRec {
        trace_id: ctx.trace_id,
        phase: Phase::Root,
        op: TraceOp::from_u8(ctx.op),
        shard: NO_SHARD,
        nested: false,
        t_start_ns,
        t_end_ns: t_end,
        counters: Counters::default(),
    };
    TLS.with(|t| push_record(&mut t.borrow_mut(), &rec));
    let wall = t_end.saturating_sub(t_start_ns);
    if wall < r.threshold_ns.load(Ordering::Relaxed) {
        return;
    }
    // Slow path only: scan every ring for this request's spans.
    let mut all = Vec::new();
    for ring in r.rings.lock().unwrap().iter() {
        ring.collect_into(&mut all);
    }
    let mut phase_ns = [0u64; N_BREAKDOWN];
    let mut counters = Counters::default();
    let mut spans = 0u32;
    let mut intervals: Vec<(u64, u64)> = Vec::new();
    for s in all {
        if s.trace_id != ctx.trace_id || matches!(s.phase, Phase::Root) {
            continue;
        }
        spans += 1;
        phase_ns[s.phase as usize] += s.dur_ns();
        intervals.push((s.t_start_ns, s.t_end_ns));
        counters.nodes = counters.nodes.saturating_add(s.counters.nodes);
        counters.pages = counters.pages.saturating_add(s.counters.pages);
        counters.fanout = counters.fanout.saturating_add(s.counters.fanout);
        counters.queue_depth = counters.queue_depth.max(s.counters.queue_depth);
    }
    // Coverage = length of the interval union. The per-thread `nested`
    // bit can't see cross-thread nesting (a scatter task's Descent
    // under the caller's FanOut), so summing "non-nested" spans would
    // double-count parallel fan-outs; merging intervals can't.
    intervals.sort_unstable();
    let mut covered = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for (a, b) in intervals {
        match &mut cur {
            Some((_, e)) if a <= *e => *e = (*e).max(b),
            _ => {
                if let Some((s0, e0)) = cur {
                    covered += e0.saturating_sub(s0);
                }
                cur = Some((a, b));
            }
        }
    }
    if let Some((s0, e0)) = cur {
        covered += e0.saturating_sub(s0);
    }
    let entry = SlowQuery {
        req_id: ctx.req_id,
        trace_id: ctx.trace_id,
        op: TraceOp::from_u8(ctx.op),
        t_start_ns,
        wall_ns: wall,
        phase_ns,
        covered_ns: covered,
        counters,
        spans,
    };
    r.slow_total.fetch_add(1, Ordering::Relaxed);
    let mut slow = r.slow.lock().unwrap();
    if slow.len() >= r.cfg.slow_capacity.max(1) {
        slow.pop_front();
    }
    slow.push_back(entry);
}

// ------------------------------------------------------- reading it back

/// The `n` most recent records across all rings, newest first.
pub fn recent(n: usize) -> Vec<SpanRec> {
    let Some(r) = recorder() else {
        return Vec::new();
    };
    let mut all = Vec::new();
    for ring in r.rings.lock().unwrap().iter() {
        ring.collect_into(&mut all);
    }
    all.sort_unstable_by_key(|r| std::cmp::Reverse(r.t_end_ns));
    all.truncate(n);
    all
}

/// The retained slow-query entries, newest last.
pub fn recent_slow() -> Vec<SlowQuery> {
    match recorder() {
        None => Vec::new(),
        Some(r) => r.slow.lock().unwrap().iter().cloned().collect(),
    }
}

/// The retained trigger dumps, newest last.
pub fn dumps() -> Vec<DumpSnapshot> {
    match recorder() {
        None => Vec::new(),
        Some(r) => r.dumps.lock().unwrap().iter().cloned().collect(),
    }
}

/// Snapshots the flight recorder because something went wrong (shed,
/// protocol error, contained panic). Rate-limited: dumps inside
/// [`TraceConfig::dump_min_interval_ns`] of the last collapse into
/// it, so an error storm costs one snapshot per window.
pub fn trigger_dump(reason: &str) {
    let Some(r) = recorder() else { return };
    let now = now_ns();
    let last = r.last_dump_ns.load(Ordering::Relaxed);
    // `last == 0` means "never dumped" (now_ns is ≥ 0 by definition,
    // and the first dump must not be suppressed).
    if last != 0 && now.saturating_sub(last) < r.cfg.dump_min_interval_ns {
        return;
    }
    if r.last_dump_ns
        .compare_exchange(last, now.max(1), Ordering::Relaxed, Ordering::Relaxed)
        .is_err()
    {
        return; // another thread won this window's dump
    }
    let records = recent(r.cfg.dump_keep);
    r.dumps_total.fetch_add(1, Ordering::Relaxed);
    let mut dumps = r.dumps.lock().unwrap();
    if dumps.len() >= r.cfg.dump_capacity.max(1) {
        dumps.pop_front();
    }
    dumps.push_back(DumpSnapshot {
        reason: reason.to_string(),
        at_ns: now,
        records,
    });
}

// ------------------------------------------------------------------ JSON

/// The slow-query log as a JSON array (newest last).
pub fn slow_json() -> String {
    json::slow_queries(&recent_slow())
}

/// The `n` most recent flight-recorder records as a JSON array.
pub fn trace_json(n: usize) -> String {
    json::spans(&recent(n))
}

/// The retained trigger dumps as a JSON array.
pub fn dumps_json() -> String {
    json::dumps(&dumps())
}
