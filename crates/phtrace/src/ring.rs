//! The per-thread flight-recorder ring: fixed-size slots, one writer
//! (the owning thread), any number of concurrent readers.
//!
//! Each slot is 7 `AtomicU64` words — a per-slot sequence word plus 6
//! data words — written with the classic seqlock discipline: the
//! writer bumps the sequence to odd, release-fences, stores the data
//! relaxed, then stores the even sequence with release ordering. A
//! reader acquire-loads the sequence, copies the data relaxed,
//! acquire-fences, and re-reads the sequence: a mismatch (or an odd
//! value) means the copy may be torn and the slot is skipped. Because
//! every word is an atomic there is no UB, and because the writer
//! never waits, recording **cannot block** — a reader racing a wrap
//! merely loses that one record, which is the flight-recorder
//! contract (drop oldest, never stall the request path).

use crate::{Counters, Phase, SpanRec, TraceOp};
use std::sync::atomic::{fence, AtomicU64, Ordering};

/// Words per slot: seq + 6 data words (56 bytes).
const WORDS: usize = 7;

/// Packs phase/op/shard/nested into one meta word.
fn pack_meta(phase: Phase, op: TraceOp, shard: u16, nested: bool) -> u64 {
    (phase as u64) | ((op as u64) << 8) | ((shard as u64) << 16) | ((nested as u64) << 32)
}

/// One bounded single-writer ring.
pub(crate) struct Ring {
    slots: Box<[AtomicU64]>,
    cap: usize,
    /// Records ever written to this ring (the write cursor).
    head: AtomicU64,
}

impl Ring {
    pub(crate) fn new(cap: usize) -> Ring {
        let cap = cap.max(8);
        Ring {
            slots: (0..cap * WORDS).map(|_| AtomicU64::new(0)).collect(),
            cap,
            head: AtomicU64::new(0),
        }
    }

    /// Appends `rec`, overwriting the oldest slot on wrap. Must only
    /// be called by the ring's owning (lease-holding) thread.
    pub(crate) fn push(&self, rec: &SpanRec) {
        let h = self.head.load(Ordering::Relaxed);
        let base = (h as usize % self.cap) * WORDS;
        let s = &self.slots[base..base + WORDS];
        let seq = s[0].load(Ordering::Relaxed);
        s[0].store(seq | 1, Ordering::Relaxed); // odd: write in progress
        fence(Ordering::Release);
        s[1].store(rec.trace_id, Ordering::Relaxed);
        s[2].store(rec.t_start_ns, Ordering::Relaxed);
        s[3].store(rec.t_end_ns, Ordering::Relaxed);
        s[4].store(
            pack_meta(rec.phase, rec.op, rec.shard, rec.nested),
            Ordering::Relaxed,
        );
        s[5].store(
            (rec.counters.nodes as u64) | ((rec.counters.pages as u64) << 32),
            Ordering::Relaxed,
        );
        s[6].store(
            (rec.counters.fanout as u64) | ((rec.counters.queue_depth as u64) << 32),
            Ordering::Relaxed,
        );
        s[0].store((seq | 1).wrapping_add(1), Ordering::Release); // even: stable
        self.head.store(h + 1, Ordering::Release);
    }

    /// Copies every stable record into `out` (order unspecified; torn
    /// or never-written slots are skipped).
    pub(crate) fn collect_into(&self, out: &mut Vec<SpanRec>) {
        for i in 0..self.cap {
            let s = &self.slots[i * WORDS..(i + 1) * WORDS];
            let s1 = s[0].load(Ordering::Acquire);
            if s1 == 0 || s1 & 1 == 1 {
                continue; // never written, or a write is in flight
            }
            let d: [u64; 6] = std::array::from_fn(|j| s[j + 1].load(Ordering::Relaxed));
            fence(Ordering::Acquire);
            if s[0].load(Ordering::Relaxed) != s1 {
                continue; // torn by a concurrent overwrite
            }
            out.push(SpanRec {
                trace_id: d[0],
                t_start_ns: d[1],
                t_end_ns: d[2],
                phase: Phase::from_u8((d[3] & 0xff) as u8),
                op: TraceOp::from_u8(((d[3] >> 8) & 0xff) as u8),
                shard: ((d[3] >> 16) & 0xffff) as u16,
                nested: (d[3] >> 32) & 1 == 1,
                counters: Counters {
                    nodes: (d[4] & 0xffff_ffff) as u32,
                    pages: (d[4] >> 32) as u32,
                    fanout: (d[5] & 0xffff_ffff) as u32,
                    queue_depth: (d[5] >> 32) as u32,
                },
            });
        }
    }

    /// Records ever written (the drop-oldest proof: retained ≤ cap).
    pub(crate) fn written(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    #[cfg(test)]
    pub(crate) fn capacity(&self) -> usize {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(trace_id: u64, t: u64) -> SpanRec {
        SpanRec {
            trace_id,
            phase: Phase::Descent,
            op: TraceOp::Query,
            shard: 3,
            nested: true,
            t_start_ns: t,
            t_end_ns: t + 10,
            counters: Counters {
                nodes: 7,
                pages: 1,
                fanout: 0,
                queue_depth: 0,
            },
        }
    }

    #[test]
    fn roundtrip_and_drop_oldest() {
        let r = Ring::new(8);
        for i in 0..20u64 {
            r.push(&rec(i, i * 100));
        }
        let mut out = Vec::new();
        r.collect_into(&mut out);
        assert_eq!(out.len(), r.capacity());
        assert_eq!(r.written(), 20);
        // Exactly the newest `cap` records survive.
        let mut ids: Vec<u64> = out.iter().map(|r| r.trace_id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (12..20).collect::<Vec<_>>());
        // Fields round-trip through the packed words.
        let r0 = out.iter().find(|r| r.trace_id == 12).unwrap();
        assert_eq!(r0.phase, Phase::Descent);
        assert_eq!(r0.op, TraceOp::Query);
        assert_eq!(r0.shard, 3);
        assert!(r0.nested);
        assert_eq!(r0.counters.nodes, 7);
        assert_eq!(r0.counters.pages, 1);
        assert_eq!(r0.dur_ns(), 10);
    }

    #[test]
    fn concurrent_reads_never_tear() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let r = Arc::new(Ring::new(16));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let r = Arc::clone(&r);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut out = Vec::new();
                    while !stop.load(Ordering::Relaxed) {
                        out.clear();
                        r.collect_into(&mut out);
                        for rec in &out {
                            // A torn record would break the invariant
                            // t_end = t_start + trace_id (set below).
                            assert_eq!(rec.t_end_ns, rec.t_start_ns + rec.trace_id);
                        }
                    }
                })
            })
            .collect();
        for i in 1..50_000u64 {
            let mut x = rec(i, 1000);
            x.t_end_ns = x.t_start_ns + i;
            r.push(&x);
        }
        stop.store(true, Ordering::Relaxed);
        for t in readers {
            t.join().unwrap();
        }
    }
}
