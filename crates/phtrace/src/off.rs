//! The `trace`-feature-**off** surface: every type is a ZST, every
//! function an `#[inline(always)]` no-op, so instrumented call sites
//! compile to nothing — the zero-cost contract the interleaved A/B
//! perf gate in CI pins (fig7/fig8 within ±2% of the untraced
//! baseline).

use crate::{
    DumpSnapshot, PayloadCounter, Phase, SlowQuery, SpanRec, TraceConfig, TraceOp, TraceStats,
};

/// ZST stand-in for the per-request context (see the `trace`-enabled
/// docs). Always unsampled.
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceCtx;

impl TraceCtx {
    /// An unsampled context.
    #[inline(always)]
    pub fn off() -> TraceCtx {
        TraceCtx
    }

    /// Always false.
    #[inline(always)]
    pub fn sampled(&self) -> bool {
        false
    }

    /// Always 0.
    #[inline(always)]
    pub fn req_id(&self) -> u64 {
        0
    }

    /// Always [`TraceOp::Other`].
    #[inline(always)]
    pub fn op(&self) -> TraceOp {
        TraceOp::Other
    }

    /// No-op guard.
    #[inline(always)]
    pub fn attach(self) -> CtxGuard {
        CtxGuard
    }
}

/// ZST no-op guard.
pub struct CtxGuard;

/// ZST no-op guard.
#[must_use = "a span measures until the guard drops"]
pub struct SpanGuard;

impl SpanGuard {
    /// No-op.
    #[inline(always)]
    pub fn with_shard(self, _slot: usize) -> SpanGuard {
        self
    }
}

/// Always 0 (no clock read with the feature off).
#[inline(always)]
pub fn now_ns() -> u64 {
    0
}

/// Always false: nothing to install.
#[inline(always)]
pub fn install(_cfg: TraceConfig) -> bool {
    false
}

/// Always false.
#[inline(always)]
pub fn installed() -> bool {
    false
}

/// Always 0.
#[inline(always)]
pub fn slow_threshold_ns() -> u64 {
    0
}

/// Always false.
#[inline(always)]
pub fn slow_threshold_is_auto() -> bool {
    false
}

/// No-op.
#[inline(always)]
pub fn set_slow_threshold_ns(_ns: u64) {}

/// All-zero stats, `installed: false`.
#[inline(always)]
pub fn stats() -> TraceStats {
    TraceStats::default()
}

/// Always the unsampled ZST context.
#[inline(always)]
pub fn current() -> TraceCtx {
    TraceCtx
}

/// Always the unsampled ZST context.
#[inline(always)]
pub fn start_request(_req_id: u64, _op: TraceOp) -> TraceCtx {
    TraceCtx
}

/// No-op guard.
#[inline(always)]
pub fn span(_phase: Phase) -> SpanGuard {
    SpanGuard
}

/// No-op guard.
#[inline(always)]
pub fn span_at(_phase: Phase, _t_start_ns: u64) -> SpanGuard {
    SpanGuard
}

/// No-op.
#[inline(always)]
pub fn add(_c: PayloadCounter, _n: u64) {}

/// No-op.
#[inline(always)]
pub fn add_nodes(_n: u64) {}

/// No-op.
#[inline(always)]
pub fn add_pages(_n: u64) {}

/// No-op.
#[inline(always)]
pub fn record_queue_wait(_ctx: TraceCtx, _t_enq_ns: u64, _depth: u32) {}

/// No-op.
#[inline(always)]
pub fn finish_root(_ctx: TraceCtx, _t_start_ns: u64) {}

/// No-op.
#[inline(always)]
pub fn trigger_dump(_reason: &str) {}

/// Always empty.
#[inline(always)]
pub fn recent(_n: usize) -> Vec<SpanRec> {
    Vec::new()
}

/// Always empty.
#[inline(always)]
pub fn recent_slow() -> Vec<SlowQuery> {
    Vec::new()
}

/// Always empty.
#[inline(always)]
pub fn dumps() -> Vec<DumpSnapshot> {
    Vec::new()
}

/// Always `[]`.
#[inline(always)]
pub fn slow_json() -> String {
    "[]".to_string()
}

/// Always `[]`.
#[inline(always)]
pub fn trace_json(_n: usize) -> String {
    "[]".to_string()
}

/// Always `[]`.
#[inline(always)]
pub fn dumps_json() -> String {
    "[]".to_string()
}
