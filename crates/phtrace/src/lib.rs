//! # phtrace — request-scoped tracing for the PH-tree serving stack
//!
//! The aggregate instruments in `phmetrics` can say *that* p99 got
//! worse; this crate says **which request**, **which shard**, and
//! **which phase** — queue wait vs. fan-out vs. node descent vs.
//! packed-page fetch vs. WAL — made it worse. It is a std-only,
//! lock-free **flight recorder**:
//!
//! * Fixed-size span records (56 bytes: op, phase, shard slot,
//!   `t_start`/`t_end` on a process-wide monotonic clock, payload
//!   counters `nodes_visited`/`pages_touched`/`fanout`/`queue_depth`)
//!   are written into **per-thread bounded ring buffers**. Writing
//!   never blocks, never allocates after the ring exists, and drops
//!   oldest on wrap — the recorder is always on once installed.
//! * A [`TraceCtx`] (request id + sampling decision, made once at the
//!   wire layer) travels by value through the admission queue, batch
//!   coalescing, shard fan-out and storage layers; every layer opens
//!   phase spans against the ambient context via [`span`].
//! * Completed root spans over a configurable threshold are assembled
//!   into a structured per-phase breakdown and retained in a bounded
//!   **slow-query log** ([`recent_slow`]).
//! * Shed / protocol-error / contained-panic events snapshot the
//!   flight recorder into a bounded **trigger-dump** buffer
//!   ([`trigger_dump`], [`dumps`]).
//!
//! With the `trace` cargo feature **off** (the default) every type
//! here is a zero-sized struct and every function an inlineable no-op,
//! so instrumented crates pay nothing — the same zero-cost discipline
//! `phmetrics` established, and CI gates it with the same interleaved
//! A/B perf contract.
//!
//! ## Memory bounds
//!
//! One ring costs `ring_slots × 56` bytes (default 1024 slots ≈ 56
//! KiB). Rings are leased per thread and returned to a free list when
//! the thread exits, so the steady-state ring count is the *peak
//! concurrent* recording-thread count, not the total threads ever
//! spawned (phserve runs a thread per connection). The slow log and
//! dump buffer are bounded deques ([`TraceConfig::slow_capacity`],
//! [`TraceConfig::dump_capacity`] × [`TraceConfig::dump_keep`]).
//!
//! ## Clock discipline
//!
//! All timestamps are nanoseconds since the first [`now_ns`] call,
//! measured on one process-wide `Instant` epoch — monotonic,
//! cross-thread comparable, immune to wall-clock steps. Records never
//! store wall-clock time.

#![warn(missing_docs)]

use std::fmt;

/// Number of phases that appear in a slow-query breakdown (every
/// [`Phase`] except [`Phase::Root`]).
pub const N_BREAKDOWN: usize = 6;

/// The phase a span attributes its time to. `Root` brackets the whole
/// request (admission → reply encoded); the rest partition it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Phase {
    /// Admission-queue wait, including head-of-line wait inside a
    /// popped batch: everything between admission and the worker
    /// starting this request's own work.
    Queue = 0,
    /// Cross-shard scan: scatter + merge (or the sequential per-shard
    /// loop on a pinned snapshot). Encloses per-shard `Descent` spans.
    FanOut = 1,
    /// One shard's tree traversal. Carries the shard slot; the
    /// `nodes_visited` counter arrives via the `phtree` `TreeSink`
    /// probe seam.
    Descent = 2,
    /// Packed-checkpoint page fetch (an LRU miss reading + verifying
    /// an extent).
    Page = 3,
    /// WAL append / fsync.
    Wal = 4,
    /// Reply encode + hand-off to the connection writer.
    Reply = 5,
    /// The whole request. Written by [`finish_root`]; never appears in
    /// a breakdown (it *is* the wall time).
    Root = 6,
}

impl Phase {
    /// Stable lowercase name (JSON keys, logs).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Queue => "queue",
            Phase::FanOut => "fanout",
            Phase::Descent => "descent",
            Phase::Page => "page",
            Phase::Wal => "wal",
            Phase::Reply => "reply",
            Phase::Root => "root",
        }
    }

    #[cfg_attr(not(feature = "trace"), allow(dead_code))]
    pub(crate) fn from_u8(v: u8) -> Phase {
        match v {
            0 => Phase::Queue,
            1 => Phase::FanOut,
            2 => Phase::Descent,
            3 => Phase::Page,
            4 => Phase::Wal,
            5 => Phase::Reply,
            _ => Phase::Root,
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The operation a trace belongs to, mirroring the wire protocol's op
/// surface (plus `Other` for anything outside it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum TraceOp {
    Insert = 0,
    Get = 1,
    Remove = 2,
    Query = 3,
    Knn = 4,
    BulkLoad = 5,
    Stats = 6,
    Ping = 7,
    Other = 8,
}

impl TraceOp {
    /// Stable lowercase name, matching the `phserve` op labels.
    pub fn name(self) -> &'static str {
        match self {
            TraceOp::Insert => "insert",
            TraceOp::Get => "get",
            TraceOp::Remove => "remove",
            TraceOp::Query => "query",
            TraceOp::Knn => "knn",
            TraceOp::BulkLoad => "bulk_load",
            TraceOp::Stats => "stats",
            TraceOp::Ping => "ping",
            TraceOp::Other => "other",
        }
    }

    /// Maps a `phserve` op label back to its `TraceOp`.
    pub fn from_label(label: &str) -> TraceOp {
        match label {
            "insert" => TraceOp::Insert,
            "get" => TraceOp::Get,
            "remove" => TraceOp::Remove,
            "query" => TraceOp::Query,
            "knn" => TraceOp::Knn,
            "bulk_load" => TraceOp::BulkLoad,
            "stats" => TraceOp::Stats,
            "ping" => TraceOp::Ping,
            _ => TraceOp::Other,
        }
    }

    #[cfg_attr(not(feature = "trace"), allow(dead_code))]
    pub(crate) fn from_u8(v: u8) -> TraceOp {
        match v {
            0 => TraceOp::Insert,
            1 => TraceOp::Get,
            2 => TraceOp::Remove,
            3 => TraceOp::Query,
            4 => TraceOp::Knn,
            5 => TraceOp::BulkLoad,
            6 => TraceOp::Stats,
            7 => TraceOp::Ping,
            _ => TraceOp::Other,
        }
    }
}

/// Payload counters a span accumulates (via [`add`]) while open.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PayloadCounter {
    /// Tree nodes visited (fed by the `phtree` `TreeSink` probes).
    Nodes,
    /// Packed pages touched (fed by the `phpack` page cache).
    Pages,
    /// Shards a cross-shard op fanned out to.
    Fanout,
    /// Admission-queue depth observed when the request was admitted.
    QueueDepth,
}

/// The four payload counters of one span record.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Tree nodes visited while the span was open.
    pub nodes: u32,
    /// Packed pages touched while the span was open.
    pub pages: u32,
    /// Fan-out width (shards scanned).
    pub fanout: u32,
    /// Queue depth at admission (queue spans only).
    pub queue_depth: u32,
}

/// One fixed-size flight-recorder record: a completed span.
#[derive(Clone, Copy, Debug)]
pub struct SpanRec {
    /// Process-unique id of the request this span belongs to (not the
    /// wire `req_id`, which is client-chosen and may collide across
    /// connections — the slow log carries both).
    pub trace_id: u64,
    /// Phase attributed.
    pub phase: Phase,
    /// Operation of the owning request.
    pub op: TraceOp,
    /// Shard slot (`u16::MAX` when not shard-scoped).
    pub shard: u16,
    /// Whether another span of the same request was open on the same
    /// thread when this one opened (e.g. `Descent` inside `FanOut` on
    /// the non-scattered path). Cross-thread nesting — a scatter-task
    /// `Descent` under the caller's `FanOut` — is *not* flagged, which
    /// is why coverage accounting merges intervals instead of trusting
    /// this bit.
    pub nested: bool,
    /// Start, ns on the process monotonic clock.
    pub t_start_ns: u64,
    /// End, ns on the process monotonic clock.
    pub t_end_ns: u64,
    /// Payload counters accumulated while open.
    pub counters: Counters,
}

impl SpanRec {
    /// Span duration in nanoseconds.
    pub fn dur_ns(&self) -> u64 {
        self.t_end_ns.saturating_sub(self.t_start_ns)
    }
}

/// One assembled slow-query entry: a root span over the threshold,
/// broken down per phase.
#[derive(Clone, Debug)]
pub struct SlowQuery {
    /// Wire-protocol request id (client-chosen).
    pub req_id: u64,
    /// Process-unique trace id.
    pub trace_id: u64,
    /// Operation.
    pub op: TraceOp,
    /// Root start, ns on the process monotonic clock.
    pub t_start_ns: u64,
    /// Root wall time, ns.
    pub wall_ns: u64,
    /// Total span time per phase, indexed by `Phase as usize`
    /// (`Root` excluded). Nested spans are included here, so
    /// `phase_ns[Descent]` inside `phase_ns[FanOut]` overlaps by
    /// design — use [`SlowQuery::covered_ns`] for a gap-free sum.
    pub phase_ns: [u64; N_BREAKDOWN],
    /// Double-count-free coverage: the length of the **union** of all
    /// the request's span intervals (overlaps — nested spans, parallel
    /// per-shard descents — collapse instead of double-counting).
    /// Lands within ~10% of `wall_ns` when every layer is
    /// instrumented, and can never exceed it by more than clock skew.
    pub covered_ns: u64,
    /// Payload counters summed over all the request's spans.
    pub counters: Counters,
    /// Number of spans assembled into this entry.
    pub spans: u32,
}

/// A flight-recorder snapshot taken by [`trigger_dump`].
#[derive(Clone, Debug)]
pub struct DumpSnapshot {
    /// Why the dump fired (shed, protocol error, contained panic…).
    pub reason: String,
    /// When it fired, ns on the process monotonic clock.
    pub at_ns: u64,
    /// Most recent records across all rings, newest first.
    pub records: Vec<SpanRec>,
}

/// Slow-query threshold policy.
#[derive(Clone, Copy, Debug)]
pub enum SlowThreshold {
    /// Retuned by the server from trailing latency (p99 × 4); starts
    /// at 10 ms until the first retune.
    Auto,
    /// Fixed, in nanoseconds.
    FixedNs(u64),
}

/// Recorder configuration for [`install`].
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// Sample 1 in `sample_every` requests (0 or 1 = every request).
    pub sample_every: u32,
    /// Slow-query threshold policy.
    pub slow_threshold: SlowThreshold,
    /// Slots per per-thread ring (each slot is 56 bytes).
    pub ring_slots: usize,
    /// Bounded slow-log length (oldest dropped).
    pub slow_capacity: usize,
    /// Bounded trigger-dump count (oldest dropped).
    pub dump_capacity: usize,
    /// Records kept per trigger dump (newest first).
    pub dump_keep: usize,
    /// Minimum spacing between trigger dumps; storms collapse into
    /// the first dump of each window.
    pub dump_min_interval_ns: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            sample_every: 64,
            slow_threshold: SlowThreshold::Auto,
            ring_slots: 1024,
            slow_capacity: 64,
            dump_capacity: 4,
            dump_keep: 256,
            dump_min_interval_ns: 100_000_000,
        }
    }
}

/// Recorder health counters, for tests and the `/debug` endpoints.
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceStats {
    /// Whether a recorder is installed (always false with the `trace`
    /// feature off).
    pub installed: bool,
    /// Requests that passed the sampling decision.
    pub sampled_requests: u64,
    /// Span records ever written (across ring wraps).
    pub records: u64,
    /// Slow-query entries ever assembled.
    pub slow_queries: u64,
    /// Trigger dumps ever taken.
    pub dumps: u64,
    /// Rings currently allocated (leased + free-listed).
    pub rings: u64,
    /// Current slow threshold, ns.
    pub slow_threshold_ns: u64,
}

pub mod json;

#[cfg(feature = "trace")]
mod live;
#[cfg(feature = "trace")]
mod ring;
#[cfg(feature = "trace")]
pub use live::{
    add, add_nodes, add_pages, current, dumps, dumps_json, finish_root, install, installed, now_ns,
    recent, recent_slow, record_queue_wait, set_slow_threshold_ns, slow_json,
    slow_threshold_is_auto, slow_threshold_ns, span, span_at, start_request, stats, trace_json,
    trigger_dump, CtxGuard, SpanGuard, TraceCtx,
};

#[cfg(not(feature = "trace"))]
mod off;
#[cfg(not(feature = "trace"))]
pub use off::{
    add, add_nodes, add_pages, current, dumps, dumps_json, finish_root, install, installed, now_ns,
    recent, recent_slow, record_queue_wait, set_slow_threshold_ns, slow_json,
    slow_threshold_is_auto, slow_threshold_ns, span, span_at, start_request, stats, trace_json,
    trigger_dump, CtxGuard, SpanGuard, TraceCtx,
};
