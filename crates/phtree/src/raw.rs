//! Raw node access for serialisation (used by the `phstore` paged
//! persistence layer).
//!
//! A PH-tree's structure is canonical — a pure function of its contents
//! — so persisting it per *node* (rather than per entry) is both safe
//! and exactly what the paper's outlook proposes: node data is one
//! packed bit string that can be written to disk pages, and any update
//! affects at most two nodes, i.e. at most two page neighbourhoods.
//!
//! [`NodeRef`] exposes a node's serialisable parts; rebuilding goes
//! through [`PhTree::from_raw_parts`]/[`NodeRef`]-shaped data via
//! [`build_node`], which re-validates all structural invariants so that
//! corrupt input yields an error instead of a broken tree.

use crate::node::Node;
use crate::tree::PhTree;
use phbits::BitBuf;

/// Read-only view of a node's serialisable parts.
pub struct NodeRef<'t, V, const K: usize> {
    pub(crate) node: &'t Node<V, K>,
}

impl<'t, V, const K: usize> NodeRef<'t, V, K> {
    /// Bits per dimension below this node's split.
    pub fn post_len(&self) -> u8 {
        self.node.post_len
    }

    /// Bits per dimension of this node's stored infix.
    pub fn infix_len(&self) -> u8 {
        self.node.infix_len
    }

    /// Whether the node is in HC (full hypercube) representation.
    pub fn is_hc(&self) -> bool {
        self.node.hc_flag()
    }

    /// Length of the packed bit string, in bits.
    pub fn bits_len(&self) -> usize {
        self.node.bits.len()
    }

    /// Backing words of the packed bit string.
    pub fn bits_words(&self) -> &[u64] {
        self.node.bits.words()
    }

    /// Values of the node's postfix entries, in hypercube-address order.
    pub fn values(&self) -> &[V] {
        &self.node.values
    }

    /// Sub-node children, in hypercube-address order.
    pub fn subs(&self) -> impl ExactSizeIterator<Item = NodeRef<'_, V, K>> {
        self.node.subs.iter().map(|n| NodeRef { node: n.as_ref() })
    }
}

/// An owned, validated node being reassembled from storage. Opaque;
/// produced by [`build_node`] and consumed by child lists or
/// [`PhTree::from_raw_parts`].
pub struct RawNode<V, const K: usize> {
    pub(crate) node: Node<V, K>,
}

/// Why raw reassembly rejected its input — i.e. which structural
/// invariant the (presumably corrupt) serialised bytes violated.
/// Storage layers surface [`RawError::what`] in their own corruption
/// errors instead of panicking on hostile input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawError {
    what: &'static str,
}

impl RawError {
    fn new(what: &'static str) -> Self {
        RawError { what }
    }

    /// Static description of the violated invariant.
    pub fn what(&self) -> &'static str {
        self.what
    }
}

impl std::fmt::Display for RawError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt node: {}", self.what)
    }
}

impl std::error::Error for RawError {}

/// Reassembles one node from its serialised parts. `subs` must be the
/// node's children in hypercube-address order (built bottom-up).
///
/// Returns an error if the parts are inconsistent (wrong bit-string
/// length for the representation, invalid slot-kind codes, unsorted
/// addresses, child depth mismatches, …) — i.e. on corrupt input.
pub fn build_node<V, const K: usize>(
    post_len: u8,
    infix_len: u8,
    is_hc: bool,
    bits_words: Box<[u64]>,
    bits_len: usize,
    subs: Vec<RawNode<V, K>>,
    values: Vec<V>,
) -> Result<RawNode<V, K>, RawError> {
    let bits = BitBuf::from_words(bits_words, bits_len)
        .ok_or_else(|| RawError::new("bit-string length disagrees with word count"))?;
    let mut subs: Vec<std::sync::Arc<Node<V, K>>> = subs
        .into_iter()
        .map(|r| std::sync::Arc::new(r.node))
        .collect();
    // Decoded trees must carry zero capacity slack (the space accounting
    // charges capacity): callers may have collected these vectors
    // through adapters that over-reserve.
    subs.shrink_to_fit();
    let mut values = values;
    values.shrink_to_fit();
    let node =
        Node::from_parts(post_len, infix_len, is_hc, bits, subs, values).map_err(RawError::new)?;
    Ok(RawNode { node })
}

impl<V, const K: usize> PhTree<V, K> {
    /// Read-only view of the root node, if any (serialisation entry
    /// point).
    pub fn root_raw(&self) -> Option<NodeRef<'_, V, K>> {
        self.root.as_deref().map(|node| NodeRef { node })
    }

    /// Rebuilds a tree from a reassembled root node.
    ///
    /// Validates the root shape (split at the top bit, no infix) and
    /// recounts the entries; returns an error on mismatch with
    /// `expected_len`.
    pub fn from_raw_parts(
        root: Option<RawNode<V, K>>,
        expected_len: usize,
    ) -> Result<Self, RawError> {
        let tree = match root {
            None => PhTree::new(),
            Some(r) => {
                if r.node.post_len != 63 || r.node.infix_len != 0 {
                    return Err(RawError::new(
                        "root must split at the top bit with no infix",
                    ));
                }
                PhTree::assemble(r.node, expected_len)
            }
        };
        if tree.len() != expected_len {
            return Err(RawError::new("stored entry count disagrees with tree"));
        }
        // Entry recount (cheap relative to I/O) guards the stored count.
        if tree.iter().count() != expected_len {
            return Err(RawError::new("entry recount disagrees with stored count"));
        }
        Ok(tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> PhTree<u32, 3> {
        let mut t = PhTree::new();
        for i in 0..500u64 {
            t.insert([i % 17, i / 17, i.wrapping_mul(0x9E37_79B9)], i as u32);
        }
        t
    }

    /// Deep-copy a tree through the raw API (what phstore does through
    /// a file).
    fn roundtrip<V: Clone, const K: usize>(t: &PhTree<V, K>) -> Result<PhTree<V, K>, RawError> {
        fn copy<V: Clone, const K: usize>(
            n: &NodeRef<'_, V, K>,
        ) -> Result<RawNode<V, K>, RawError> {
            let subs = n.subs().map(|c| copy(&c)).collect::<Result<Vec<_>, _>>()?;
            build_node(
                n.post_len(),
                n.infix_len(),
                n.is_hc(),
                n.bits_words().to_vec().into_boxed_slice(),
                n.bits_len(),
                subs,
                n.values().to_vec(),
            )
        }
        let root = match t.root_raw() {
            None => None,
            Some(r) => Some(copy(&r)?),
        };
        PhTree::from_raw_parts(root, t.len())
    }

    #[test]
    fn raw_roundtrip_preserves_everything() {
        let mut t = sample_tree();
        // The roundtripped tree is rebuilt at exact capacity; shrink the
        // source so the byte-for-byte space comparison is meaningful.
        t.shrink_to_fit();
        let u = roundtrip(&t).expect("roundtrip");
        u.check_invariants();
        assert_eq!(u.len(), t.len());
        let a: Vec<_> = t.iter().map(|(k, &v)| (k, v)).collect();
        let b: Vec<_> = u.iter().map(|(k, &v)| (k, v)).collect();
        assert_eq!(a, b);
        let (sa, sb) = (t.stats(), u.stats());
        assert_eq!(sa.nodes, sb.nodes);
        assert_eq!(sa.hc_nodes, sb.hc_nodes);
        assert_eq!(sa.total_bytes, sb.total_bytes);
    }

    #[test]
    fn empty_tree_roundtrip() {
        let t: PhTree<u32, 3> = PhTree::new();
        let u = roundtrip(&t).unwrap();
        assert!(u.is_empty());
    }

    #[test]
    fn corrupt_bits_rejected() {
        let t = sample_tree();
        let r = t.root_raw().unwrap();
        // Wrong bit length for the representation.
        let bad = build_node::<u32, 3>(
            r.post_len(),
            r.infix_len(),
            r.is_hc(),
            r.bits_words().to_vec().into_boxed_slice(),
            r.bits_len().saturating_sub(1),
            Vec::new(),
            r.values().to_vec(),
        );
        assert!(bad.is_err());
    }

    #[test]
    fn corrupt_kind_bytes_rejected() {
        // Flip kind bits in an HC node to the invalid code 0b11: must be
        // reported as an error, never a panic (hostile-input path).
        let mut t: PhTree<u32, 2> = PhTree::new();
        for i in 0..64u64 {
            t.insert([i % 8, i / 8], i as u32);
        }
        // Find an HC node (root or first HC descendant).
        fn find_hc<V, const K: usize>(n: &Node<V, K>) -> Option<&Node<V, K>> {
            if n.hc_flag() {
                return Some(n);
            }
            n.subs.iter().find_map(|s| find_hc(s))
        }
        let hc = match t.root.as_deref().and_then(find_hc) {
            Some(n) => NodeRef { node: n },
            None => return, // representation thresholds changed; nothing to corrupt
        };
        let mut words = hc.bits_words().to_vec();
        // Kind table starts right after the infix; force every slot's
        // 2-bit kind to 0b11 by setting all bits of the first word.
        words[0] = !0;
        let bad = build_node::<u32, 2>(
            hc.post_len(),
            hc.infix_len(),
            true,
            words.into_boxed_slice(),
            hc.bits_len(),
            Vec::new(),
            hc.values().to_vec(),
        );
        let err = match bad {
            Err(e) => e,
            Ok(_) => panic!("corrupted kind bytes must be rejected"),
        };
        assert!(!err.what().is_empty());
    }

    #[test]
    fn wrong_root_shape_rejected() {
        // A root that does not split at the top bit is refused.
        let inner =
            build_node::<u32, 2>(10, 0, false, Box::default(), 0, Vec::new(), Vec::new()).unwrap();
        assert!(PhTree::from_raw_parts(Some(inner), 0).is_err());
    }

    #[test]
    fn wrong_len_rejected() {
        let t = sample_tree();
        let root = {
            fn copy<V: Clone, const K: usize>(n: &NodeRef<'_, V, K>) -> RawNode<V, K> {
                let subs = n.subs().map(|c| copy(&c)).collect();
                build_node(
                    n.post_len(),
                    n.infix_len(),
                    n.is_hc(),
                    n.bits_words().to_vec().into_boxed_slice(),
                    n.bits_len(),
                    subs,
                    n.values().to_vec(),
                )
                .unwrap()
            }
            copy(&t.root_raw().unwrap())
        };
        assert!(PhTree::from_raw_parts(Some(root), t.len() + 1).is_err());
    }
}
