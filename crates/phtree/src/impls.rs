//! Standard-trait implementations for [`PhTree`] and [`PhTreeF64`].
//!
//! Because the PH-tree's structure is canonical, `Clone` (a deep
//! structural copy) and re-insertion from an entry stream produce
//! identical trees, and `PartialEq` over the entry streams is a full
//! equality on the map contents.

use crate::float::PhTreeF64;
use crate::key::key_to_point;
use crate::tree::PhTree;

impl<V: std::fmt::Debug, const K: usize> std::fmt::Debug for PhTree<V, K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<V: PartialEq, const K: usize> PartialEq for PhTree<V, K> {
    fn eq(&self, other: &Self) -> bool {
        // Canonical structure ⇒ equal contents iterate identically.
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl<V: Eq, const K: usize> Eq for PhTree<V, K> {}

impl<V: Clone, const K: usize> Extend<([u64; K], V)> for PhTree<V, K> {
    fn extend<T: IntoIterator<Item = ([u64; K], V)>>(&mut self, iter: T) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

impl<V: Clone, const K: usize> FromIterator<([u64; K], V)> for PhTree<V, K> {
    fn from_iter<T: IntoIterator<Item = ([u64; K], V)>>(iter: T) -> Self {
        let mut t = PhTree::new();
        t.extend(iter);
        t
    }
}

impl<'t, V, const K: usize> IntoIterator for &'t PhTree<V, K> {
    type Item = ([u64; K], &'t V);
    type IntoIter = crate::Iter<'t, V, K>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<V: std::fmt::Debug, const K: usize> std::fmt::Debug for PhTreeF64<V, K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map()
            .entries(
                self.as_int_tree()
                    .iter()
                    .map(|(k, v)| (key_to_point(&k), v)),
            )
            .finish()
    }
}

impl<V: Clone, const K: usize> Extend<([f64; K], V)> for PhTreeF64<V, K> {
    fn extend<T: IntoIterator<Item = ([f64; K], V)>>(&mut self, iter: T) {
        for (p, v) in iter {
            self.insert(p, v);
        }
    }
}

impl<V: Clone, const K: usize> FromIterator<([f64; K], V)> for PhTreeF64<V, K> {
    fn from_iter<T: IntoIterator<Item = ([f64; K], V)>>(iter: T) -> Self {
        let mut t = PhTreeF64::new();
        t.extend(iter);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PhTree<u32, 2> {
        let mut t = PhTree::new();
        for i in 0..300u64 {
            t.insert([i % 23, i / 23], i as u32);
        }
        t
    }

    #[test]
    fn clone_is_deep_and_identical() {
        let mut t = sample();
        // Clones copy at exact capacity; shrink the original so the
        // byte-level stats comparison below is apples to apples.
        t.shrink_to_fit();
        let mut u = t.clone();
        u.check_invariants();
        assert_eq!(t, u);
        let (a, b) = (t.stats(), u.stats());
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.bit_bytes, b.bit_bytes);
        // Mutating the clone leaves the original untouched.
        u.insert([99, 99], 1);
        assert_ne!(t, u);
        assert_eq!(t.len() + 1, u.len());
        assert!(!t.contains(&[99, 99]));
    }

    #[test]
    fn equality_ignores_insert_order() {
        let t = sample();
        let mut u = PhTree::new();
        let mut entries: Vec<_> = t.iter().map(|(k, &v)| (k, v)).collect();
        entries.reverse();
        u.extend(entries);
        assert_eq!(t, u);
        u.remove(&[0, 0]);
        assert_ne!(t, u);
    }

    #[test]
    fn from_iterator_and_into_iterator() {
        let t: PhTree<u32, 2> = (0..50u64).map(|i| ([i, i * 2], i as u32)).collect();
        assert_eq!(t.len(), 50);
        let total: u32 = (&t).into_iter().map(|(_, &v)| v).sum();
        assert_eq!(total, (0..50).sum::<u32>());
    }

    #[test]
    fn debug_output_is_map_like() {
        let mut t: PhTree<u8, 1> = PhTree::new();
        t.insert([3], 7);
        let s = format!("{t:?}");
        assert!(s.contains('3') && s.contains('7'), "{s}");
    }

    #[test]
    fn f64_clone_and_collect() {
        let t: PhTreeF64<u8, 2> = [([0.5, 1.5], 1u8), ([-2.0, 4.0], 2)].into_iter().collect();
        let u = t.clone();
        assert_eq!(u.len(), 2);
        assert_eq!(u.get(&[-2.0, 4.0]), Some(&2));
        let s = format!("{u:?}");
        assert!(s.contains("1.5"), "{s}");
    }
}
