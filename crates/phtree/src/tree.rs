//! The PH-tree map: insert, point query, remove.
//!
//! All update operations follow the paper's structure (Sect. 3.6): they
//! locate the affected node with what is essentially a point query
//! (`O(w·k)`), then modify **at most two nodes** — one node is updated
//! and possibly a second one is created (insert splitting a postfix or an
//! infix) or deleted (remove merging a one-child node away), with at most
//! one entry moving between the two.

use crate::config::ReprMode;
use crate::node::{BulkChild, Child, Node, Probe, SlotRef, W};
use crate::telemetry::{self, TreeOp, Visits};
use phbits::{hc, num};
use std::sync::Arc;

/// Z-order (Morton-order) comparison of two keys: the order a
/// depth-first walk of the tree visits entries in. Two keys compare by
/// their hypercube address at the highest bit level where they diverge
/// — all higher levels' addresses are equal there, so that single
/// address decides.
fn z_cmp<const K: usize>(a: &[u64; K], b: &[u64; K]) -> std::cmp::Ordering {
    match num::max_diverging_bit(a, b) {
        None => std::cmp::Ordering::Equal,
        Some(d) => hc::addr(a, d).cmp(&hc::addr(b, d)),
    }
}

/// A map from `K`-dimensional `u64` points to values, implemented as a
/// PATRICIA-hypercube-tree.
///
/// Keys are fixed-size arrays of `u64`; each array element is one
/// dimension, ordered as an unsigned integer. Use [`crate::key`] to store
/// floating-point or signed data, or [`crate::PhTreeF64`] for an `f64`
/// convenience wrapper.
///
/// # Example
///
/// ```
/// use phtree::PhTree;
///
/// let mut tree: PhTree<&str, 2> = PhTree::new();
/// tree.insert([1, 2], "a");
/// tree.insert([1, 3], "b");
/// tree.insert([7, 2], "c");
/// assert_eq!(tree.len(), 3);
/// assert_eq!(tree.get(&[1, 3]), Some(&"b"));
///
/// // Range (window) query over [0,5] × [0,5]:
/// let mut hits: Vec<_> = tree.query(&[0, 0], &[5, 5]).map(|(k, _)| k).collect();
/// hits.sort();
/// assert_eq!(hits, vec![[1, 2], [1, 3]]);
///
/// assert_eq!(tree.remove(&[1, 2]), Some("a"));
/// assert_eq!(tree.len(), 2);
/// ```
/// # Cheap clones and copy-on-write
///
/// Nodes are stored behind [`Arc`]s, so `Clone` is O(1): it shares the
/// whole structure. Mutating either tree afterwards copies only the
/// nodes on the mutated path ([`Arc::make_mut`]) — the other tree is
/// never affected. This is what gives the sharded serving layer its
/// lock-free snapshot reads; a tree that is never cloned pays only a
/// refcount check per node on the write path.
#[derive(Clone)]
pub struct PhTree<V, const K: usize> {
    pub(crate) root: Option<Arc<Node<V, K>>>,
    len: usize,
    mode: ReprMode,
}

impl<V, const K: usize> Default for PhTree<V, K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V, const K: usize> PhTree<V, K> {
    /// Creates an empty tree with adaptive HC/LHC node representation.
    pub fn new() -> Self {
        Self::with_mode(ReprMode::Adaptive)
    }

    /// Creates an empty tree with an explicit node representation policy
    /// (used by the ablation benchmarks).
    pub fn with_mode(mode: ReprMode) -> Self {
        assert!(K >= 1 && K <= 64, "PH-tree supports 1..=64 dimensions");
        PhTree {
            root: None,
            len: 0,
            mode,
        }
    }

    /// Number of entries stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configured node representation policy.
    #[inline]
    pub fn mode(&self) -> ReprMode {
        self.mode
    }

    /// Internal constructor for deserialisation ([`crate::raw`]).
    pub(crate) fn assemble(root: Node<V, K>, len: usize) -> Self {
        PhTree {
            root: Some(Arc::new(root)),
            len,
            mode: ReprMode::Adaptive,
        }
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.root = None;
        self.len = 0;
    }

    /// Builds a tree from a batch of entries in one bottom-up pass
    /// (O(n log n) for the sort, O(n) for construction).
    ///
    /// The items are sorted by Z-order interleaving, then the sorted run
    /// is split recursively on the highest diverging bit so every node
    /// is emitted exactly once with its final contents: child vectors
    /// and the packed bit string are allocated at exact final size, and
    /// the HC/LHC representation is chosen once from the final child
    /// count. The result is structurally identical to inserting the
    /// items sequentially (the tree shape is a pure function of its
    /// contents), but without the per-entry node reallocation —
    /// loading large batches is several times faster.
    ///
    /// Duplicate keys resolve last-write-wins, matching sequential
    /// [`PhTree::insert`] semantics.
    ///
    /// ```
    /// use phtree::PhTree;
    ///
    /// let tree: PhTree<&str, 2> = PhTree::bulk_load(vec![
    ///     ([1, 2], "a"),
    ///     ([7, 2], "c"),
    ///     ([1, 3], "b"),
    ///     ([1, 2], "a2"), // duplicate: last write wins
    /// ]);
    /// assert_eq!(tree.len(), 3);
    /// assert_eq!(tree.get(&[1, 2]), Some(&"a2"));
    /// ```
    pub fn bulk_load(items: Vec<([u64; K], V)>) -> Self {
        Self::bulk_load_with_mode(items, ReprMode::Adaptive)
    }

    /// [`PhTree::bulk_load`] with an explicit node representation policy
    /// (the bulk counterpart of [`PhTree::with_mode`]).
    pub fn bulk_load_with_mode(mut items: Vec<([u64; K], V)>, mode: ReprMode) -> Self {
        assert!(K >= 1 && K <= 64, "PH-tree supports 1..=64 dimensions");
        // Stable sort keeps equal keys in input order, so keeping the
        // last of each run gives last-write-wins like sequential insert.
        items.sort_by(|a, b| z_cmp(&a.0, &b.0));
        items.dedup_by(|later, kept| {
            if later.0 == kept.0 {
                std::mem::swap(&mut later.1, &mut kept.1);
                true
            } else {
                false
            }
        });
        let len = items.len();
        if len == 0 {
            return Self::with_mode(mode);
        }
        let mut keys = Vec::with_capacity(len);
        let mut values = Vec::with_capacity(len);
        for (k, v) in items {
            keys.push(k);
            values.push(v);
        }
        // The recursion consumes values strictly left-to-right: postfix
        // entries are emitted in sorted order regardless of nesting.
        let mut vals = values.into_iter();
        let root = Self::build_range(&keys, 0, len, (W - 1) as u8, 0, &mut vals, mode);
        debug_assert!(vals.next().is_none(), "every value must be consumed");
        PhTree {
            root: Some(Arc::new(root)),
            len,
            mode,
        }
    }

    /// Builds the node covering the Z-sorted, deduplicated key range
    /// `keys[lo..hi]` bottom-up. All keys in the range agree on every
    /// bit above `post_len`; groups sharing a hypercube address at
    /// `post_len` are consecutive, and a multi-key group's sub-node
    /// splits at the group's highest diverging bit (which, for a
    /// Z-sorted range, is `max_diverging_bit(first, last)`).
    #[allow(clippy::too_many_arguments)]
    fn build_range(
        keys: &[[u64; K]],
        lo: usize,
        hi: usize,
        post_len: u8,
        infix_len: u8,
        vals: &mut std::vec::IntoIter<V>,
        mode: ReprMode,
    ) -> Node<V, K> {
        let mut children: Vec<(u64, BulkChild<V, K>)> = Vec::new();
        let mut i = lo;
        while i < hi {
            let h = hc::addr(&keys[i], post_len as u32);
            let mut j = i + 1;
            while j < hi && hc::addr(&keys[j], post_len as u32) == h {
                j += 1;
            }
            if j - i == 1 {
                let value = vals.next().expect("one value per key");
                children.push((
                    h,
                    BulkChild::Post {
                        key: keys[i],
                        value,
                    },
                ));
            } else {
                let d = num::max_diverging_bit(&keys[i], &keys[j - 1])
                    .expect("deduplicated keys must diverge");
                debug_assert!((d as u8) < post_len);
                let sub =
                    Self::build_range(keys, i, j, d as u8, post_len - 1 - d as u8, vals, mode);
                children.push((h, BulkChild::Sub(sub)));
            }
            i = j;
        }
        // Any key in the range supplies the infix bits: the whole range
        // agrees on all bits above this node's split.
        Node::from_children(post_len, infix_len, &keys[lo], children, mode)
    }
}

/// Update operations. These require `V: Clone` because nodes are
/// `Arc`-shared between tree versions: a mutation descending through a
/// node that a clone/snapshot still references path-copies it
/// ([`Arc::make_mut`]), which clones the values stored in that one
/// node. With no other version alive every node is uniquely owned and
/// updates happen in place, exactly as before.
impl<V: Clone, const K: usize> PhTree<V, K> {
    /// Inserts `key → value`. Returns the previous value if the key was
    /// already present (the PH-tree stores no duplicate keys).
    pub fn insert(&mut self, key: [u64; K], value: V) -> Option<V> {
        let mut vis = Visits::new();
        let old = match &mut self.root {
            None => {
                // First entry: the root always splits at the top bit
                // (zb = 1 in the paper's numbering), with no prefix.
                let mut root = Node::new((W - 1) as u8, 0, &key);
                root.insert_post(hc::addr(&key, W - 1), &key, value, self.mode);
                self.root = Some(Arc::new(root));
                self.len = 1;
                vis.bump();
                None
            }
            Some(root) => {
                let old = Self::insert_rec(Arc::make_mut(root), &key, value, self.mode, &mut vis);
                if old.is_none() {
                    self.len += 1;
                }
                old
            }
        };
        telemetry::record_op(TreeOp::Insert, vis);
        old
    }

    fn insert_rec(
        node: &mut Node<V, K>,
        key: &[u64; K],
        value: V,
        mode: ReprMode,
        vis: &mut Visits,
    ) -> Option<V> {
        vis.bump();
        let h = hc::addr(key, node.post_len as u32);
        match node.probe(h) {
            Probe::Empty => {
                node.insert_post(h, key, value, mode);
                None
            }
            Probe::Post { pf_off } => {
                if node.postfix_matches(pf_off, key) {
                    return Some(node.replace_post_value(h, value));
                }
                // Collision: split the postfix at the highest diverging
                // bit. Both keys agree on all bits at and above the
                // node's split (same path, same address), so the stored
                // postfix fully determines the old key.
                let mut old_key = *key;
                node.read_postfix_into(pf_off, &mut old_key);
                let dmax =
                    num::max_diverging_bit(key, &old_key).expect("distinct keys must diverge");
                debug_assert!((dmax as u8) < node.post_len);
                let sub = Node::new(dmax as u8, node.post_len - 1 - dmax as u8, key);
                let old_val = node.swap_post_for_sub(h, sub, mode);
                let sub = node.sub_mut(h).expect("just installed");
                sub.insert_post(hc::addr(&old_key, dmax), &old_key, old_val, mode);
                sub.insert_post(hc::addr(key, dmax), key, value, mode);
                None
            }
            Probe::Sub => {
                let node_post_len = node.post_len;
                let sub = node.sub_mut(h).expect("probe said sub");
                if sub.infix_matches(key) {
                    return Self::insert_rec(sub, key, value, mode, vis);
                }
                // The key deviates inside the sub-node's infix: split the
                // infix with an intermediate node holding the existing
                // sub-node and the new entry.
                let mut sub_prefix = *key;
                sub.read_infix_into(&mut sub_prefix);
                let dmax =
                    num::max_diverging_bit(key, &sub_prefix).expect("infix mismatch must diverge");
                debug_assert!(dmax > sub.post_len as u32);
                debug_assert!((dmax as u8) < node_post_len);
                // Shorten the old sub-node's infix to the bits below the
                // new split.
                let new_il = dmax as u8 - 1 - sub.post_len;
                sub.reset_infix(new_il, &sub_prefix, mode);
                let mid = Node::new(dmax as u8, node_post_len - 1 - dmax as u8, key);
                let old_sub = node.swap_sub(h, mid);
                let mid = node.sub_mut(h).expect("just installed");
                mid.insert_sub(hc::addr(&sub_prefix, dmax), old_sub, mode);
                mid.insert_post(hc::addr(key, dmax), key, value, mode);
                None
            }
        }
    }
}

impl<V, const K: usize> PhTree<V, K> {
    /// Point query: returns a reference to the value stored under `key`.
    #[inline]
    pub fn get(&self, key: &[u64; K]) -> Option<&V> {
        let mut vis = Visits::new();
        let mut node = match self.root.as_deref() {
            Some(n) => n,
            None => {
                telemetry::record_op(TreeOp::Get, vis);
                return None;
            }
        };
        let found = loop {
            vis.bump();
            if !node.infix_matches(key) {
                break None;
            }
            let h = hc::addr(key, node.post_len as u32);
            match node.get_slot(h) {
                None => break None,
                Some(SlotRef::Post { pf_off, value }) => {
                    break node.postfix_matches(pf_off, key).then_some(value);
                }
                Some(SlotRef::Sub(sub)) => node = sub,
            }
        };
        telemetry::record_op(TreeOp::Get, vis);
        found
    }

    /// Whether `key` is stored in the tree.
    #[inline]
    pub fn contains(&self, key: &[u64; K]) -> bool {
        self.get(key).is_some()
    }
}

impl<V: Clone, const K: usize> PhTree<V, K> {
    /// Point query with mutable access to the value (copy-on-write: a
    /// node shared with a snapshot is copied before being borrowed).
    pub fn get_mut(&mut self, key: &[u64; K]) -> Option<&mut V> {
        let mut node = Arc::make_mut(self.root.as_mut()?);
        loop {
            if !node.infix_matches(key) {
                return None;
            }
            let h = hc::addr(key, node.post_len as u32);
            match node.probe(h) {
                Probe::Empty => return None,
                Probe::Post { pf_off } => {
                    if !node.postfix_matches(pf_off, key) {
                        return None;
                    }
                    return node.post_value_mut(h);
                }
                Probe::Sub => node = node.sub_mut(h).expect("probe said sub"),
            }
        }
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&mut self, key: &[u64; K]) -> Option<V> {
        let mut vis = Visits::new();
        let root = match self.root.as_mut() {
            Some(r) => Arc::make_mut(r),
            None => {
                telemetry::record_op(TreeOp::Remove, vis);
                return None;
            }
        };
        let (removed, _) = Self::remove_rec(root, key, self.mode, true, &mut vis);
        telemetry::record_op(TreeOp::Remove, vis);
        if removed.is_some() {
            self.len -= 1;
            if self.root.as_ref().is_some_and(|r| r.n_children() == 0) {
                self.root = None;
            }
        }
        removed
    }

    /// Removes `key` from the subtree at `node`. The bool in the result
    /// is true if `node` is left with a single child and must be merged
    /// into its parent (never signalled for the root).
    fn remove_rec(
        node: &mut Node<V, K>,
        key: &[u64; K],
        mode: ReprMode,
        is_root: bool,
        vis: &mut Visits,
    ) -> (Option<V>, bool) {
        vis.bump();
        if !node.infix_matches(key) {
            return (None, false);
        }
        let h = hc::addr(key, node.post_len as u32);
        match node.probe(h) {
            Probe::Empty => (None, false),
            Probe::Post { pf_off } => {
                if !node.postfix_matches(pf_off, key) {
                    return (None, false);
                }
                let v = node.remove_post(h, mode);
                (Some(v), !is_root && node.n_children() == 1)
            }
            Probe::Sub => {
                let sub = node.sub_mut(h).expect("probe said sub");
                let (removed, underflow) = Self::remove_rec(sub, key, mode, false, vis);
                if underflow {
                    Self::merge_single_child(node, h, key, mode);
                }
                (removed, false)
            }
        }
    }

    /// Merges the one-child sub-node at address `h` of `node` away: its
    /// remaining child is pulled up into `node`, either as a postfix
    /// entry (absorbing the sub-node's infix and split bit) or as a
    /// grandchild sub-node with an extended infix. `key` supplies the
    /// path bits above the sub-node.
    fn merge_single_child(node: &mut Node<V, K>, h: u64, key: &[u64; K], mode: ReprMode) {
        let sub = node.sub_mut(h).expect("merge target must be a sub");
        debug_assert_eq!(sub.n_children(), 1);
        // Reconstruct the remaining child's prefix/key before detaching.
        let mut rem_key = *key;
        sub.read_infix_into(&mut rem_key);
        let (ch_addr, slot) = sub.iter_slots().next().expect("one child");
        hc::apply_addr(&mut rem_key, ch_addr, sub.post_len as u32);
        match slot {
            SlotRef::Post { pf_off, .. } => sub.read_postfix_into(pf_off, &mut rem_key),
            // A grandchild keeps its own infix bits; collect them so the
            // extended infix below can be written from `rem_key` alone.
            SlotRef::Sub(g) => g.read_infix_into(&mut rem_key),
        }
        let sub_infix_len = sub.infix_len;
        let (_, child) = sub.take_single_child().expect("one child");
        match child {
            Child::Post(v) => {
                node.replace_sub_with_post(h, &rem_key, v, mode);
            }
            Child::Sub(mut gsub) => {
                // The grandchild absorbs the merged node's infix plus its
                // split bit.
                let new_il = gsub.infix_len + sub_infix_len + 1;
                gsub.reset_infix(new_il, &rem_key, mode);
                node.swap_sub(h, gsub);
            }
        }
    }

    /// Releases surplus capacity in every node (the analogue of the
    /// paper's post-load `System.gc()` before space measurements).
    pub fn shrink_to_fit(&mut self) {
        fn walk<V: Clone, const K: usize>(n: &mut Node<V, K>) {
            n.bits.shrink_to_fit();
            n.shrink_repr();
            // Collect mutable child pointers via the repr directly.
            n.for_each_sub_mut(&mut |sub| walk(sub));
        }
        if let Some(r) = self.root.as_mut() {
            walk(Arc::make_mut(r));
        }
    }
}

impl<V, const K: usize> PhTree<V, K> {
    /// Validates all structural invariants (test helper; O(n)).
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        if let Some(r) = &self.root {
            r.check_invariants(true);
            assert_eq!(self.count_entries(), self.len, "len bookkeeping");
        } else {
            assert_eq!(self.len, 0);
        }
    }

    fn count_entries(&self) -> usize {
        fn walk<V, const K: usize>(n: &Node<V, K>) -> usize {
            let mut c = n.n_posts();
            for (_, s) in n.iter_slots() {
                if let SlotRef::Sub(sub) = s {
                    c += walk(sub);
                }
            }
            c
        }
        self.root.as_deref().map_or(0, |r| walk(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree() {
        let t: PhTree<u32, 3> = PhTree::new();
        assert!(t.is_empty());
        assert_eq!(t.get(&[1, 2, 3]), None);
    }

    #[test]
    fn single_insert_get_remove() {
        let mut t: PhTree<&str, 2> = PhTree::new();
        assert_eq!(t.insert([5, 9], "x"), None);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&[5, 9]), Some(&"x"));
        assert_eq!(t.get(&[5, 8]), None);
        assert_eq!(t.remove(&[5, 9]), Some("x"));
        assert!(t.is_empty());
        assert!(t.root.is_none());
        t.check_invariants();
    }

    #[test]
    fn replace_value() {
        let mut t: PhTree<u32, 1> = PhTree::new();
        assert_eq!(t.insert([7], 1), None);
        assert_eq!(t.insert([7], 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&[7]), Some(&2));
    }

    #[test]
    fn paper_fig1_example() {
        // Fig. 1: values 0010 and 0001 (as 4-bit values; here the same
        // shape appears in the low bits of 64-bit keys — the tree
        // structure differs only by the longer shared prefix).
        let mut t: PhTree<(), 1> = PhTree::new();
        t.insert([0b0010], ());
        t.insert([0b0001], ());
        assert!(t.contains(&[0b0010]));
        assert!(t.contains(&[0b0001]));
        assert!(!t.contains(&[0b0000]));
        assert!(!t.contains(&[0b0011]));
        t.check_invariants();
    }

    #[test]
    fn paper_fig2_example() {
        // Fig. 2: three 2-D entries (0001,1000), (0011,1000), (0011,1010).
        let mut t: PhTree<u8, 2> = PhTree::new();
        t.insert([0b0001, 0b1000], 1);
        t.insert([0b0011, 0b1000], 2);
        t.insert([0b0011, 0b1010], 3);
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(&[0b0001, 0b1000]), Some(&1));
        assert_eq!(t.get(&[0b0011, 0b1000]), Some(&2));
        assert_eq!(t.get(&[0b0011, 0b1010]), Some(&3));
        assert_eq!(t.get(&[0b0001, 0b1010]), None);
        t.check_invariants();
    }

    #[test]
    fn msb_divergence_splits_root() {
        let mut t: PhTree<u8, 2> = PhTree::new();
        t.insert([0, 0], 0);
        t.insert([u64::MAX, u64::MAX], 1);
        t.insert([0, u64::MAX], 2);
        t.insert([u64::MAX, 0], 3);
        assert_eq!(t.len(), 4);
        for (k, v) in [
            ([0, 0], 0u8),
            ([u64::MAX, u64::MAX], 1),
            ([0, u64::MAX], 2),
            ([u64::MAX, 0], 3),
        ] {
            assert_eq!(t.get(&k), Some(&v));
        }
        t.check_invariants();
    }

    #[test]
    fn deep_shared_prefix_chain() {
        // Keys differing only in the lowest bits force maximal prefix
        // sharing through a deep sub-node.
        let mut t: PhTree<u32, 3> = PhTree::new();
        let base = [0xABCD_EF01_2345_6700u64; 3];
        for i in 0..8u64 {
            let mut k = base;
            k[2] |= i;
            t.insert(k, i as u32);
        }
        assert_eq!(t.len(), 8);
        for i in 0..8u64 {
            let mut k = base;
            k[2] |= i;
            assert_eq!(t.get(&k), Some(&(i as u32)));
        }
        t.check_invariants();
    }

    #[test]
    fn powers_of_two_worst_case() {
        // Fig. 4b: {0,1,2,4,8,…} — every entry deviates from the shared
        // prefix at a different bit, producing a chain of nodes.
        let mut t: PhTree<(), 1> = PhTree::new();
        let mut keys = vec![0u64];
        for b in 0..64 {
            keys.push(1u64 << b);
        }
        for &k in &keys {
            t.insert([k], ());
        }
        assert_eq!(t.len(), keys.len());
        for &k in &keys {
            assert!(t.contains(&[k]), "missing {k}");
        }
        t.check_invariants();
        // And tear it all down again.
        for &k in &keys {
            assert_eq!(t.remove(&[k]), Some(()), "removing {k}");
            t.check_invariants();
        }
        assert!(t.is_empty());
    }

    #[test]
    fn insert_remove_interleaved() {
        let mut t: PhTree<u64, 2> = PhTree::new();
        for i in 0..100u64 {
            t.insert([i * 37 % 101, i * 53 % 97], i);
        }
        t.check_invariants();
        for i in 0..100u64 {
            let k = [i * 37 % 101, i * 53 % 97];
            assert_eq!(t.remove(&k), Some(i));
            assert_eq!(t.remove(&k), None);
            if i % 2 == 0 {
                t.insert(k, i + 1000);
            }
            t.check_invariants();
        }
        assert_eq!(t.len(), 50);
    }

    #[test]
    fn get_mut_updates_value() {
        let mut t: PhTree<Vec<u8>, 2> = PhTree::new();
        t.insert([3, 4], vec![1]);
        t.insert([3, 5], vec![2]);
        t.get_mut(&[3, 4]).unwrap().push(9);
        assert_eq!(t.get(&[3, 4]), Some(&vec![1, 9]));
        assert_eq!(t.get_mut(&[9, 9]), None);
    }

    #[test]
    fn forced_repr_modes_agree() {
        let keys: Vec<[u64; 2]> = (0..200u64).map(|i| [i % 16, i / 16]).collect();
        let mut adaptive = PhTree::<u64, 2>::with_mode(ReprMode::Adaptive);
        let mut lhc = PhTree::<u64, 2>::with_mode(ReprMode::ForceLhc);
        let mut hc = PhTree::<u64, 2>::with_mode(ReprMode::ForceHc);
        for (i, &k) in keys.iter().enumerate() {
            for t in [&mut adaptive, &mut lhc, &mut hc] {
                t.insert(k, i as u64);
            }
        }
        for t in [&adaptive, &lhc, &hc] {
            t.check_invariants();
            for (i, k) in keys.iter().enumerate() {
                assert_eq!(t.get(k), Some(&(i as u64)));
            }
        }
        for &k in keys.iter().step_by(3) {
            let a = adaptive.remove(&k);
            assert_eq!(a, lhc.remove(&k));
            assert_eq!(a, hc.remove(&k));
        }
        assert_eq!(adaptive.len(), lhc.len());
        assert_eq!(adaptive.len(), hc.len());
        adaptive.check_invariants();
        lhc.check_invariants();
        hc.check_invariants();
    }

    #[test]
    fn shrink_preserves_content() {
        let mut t: PhTree<u32, 3> = PhTree::new();
        for i in 0..500u64 {
            t.insert([i, i * i % 512, i % 7], i as u32);
        }
        t.shrink_to_fit();
        t.check_invariants();
        for i in 0..500u64 {
            assert_eq!(t.get(&[i, i * i % 512, i % 7]), Some(&(i as u32)));
        }
    }

    #[test]
    fn boolean_16d_single_node() {
        // The paper's 16-dimensional boolean example: all keys live in
        // the root node, located with one array lookup.
        let mut t: PhTree<u32, 16> = PhTree::new();
        let mut n = 0;
        for pat in 0..(1u32 << 16) {
            if pat % 37 != 0 {
                continue; // sparse subset
            }
            let key: [u64; 16] = std::array::from_fn(|d| ((pat >> d) & 1) as u64);
            t.insert(key, pat);
            n += 1;
        }
        assert_eq!(t.len(), n);
        t.check_invariants();
        for pat in (0..(1u32 << 16)).step_by(37 * 3) {
            if pat % 37 == 0 {
                let key: [u64; 16] = std::array::from_fn(|d| ((pat >> d) & 1) as u64);
                assert_eq!(t.get(&key), Some(&pat));
            }
        }
    }
}
