//! Tree statistics and exact structural memory accounting.
//!
//! The paper measures index memory via JVM heap deltas and notes that
//! summing the calculated per-node sizes agrees within 5 % (Sect. 4.3.5).
//! We use the calculated sizes directly: every heap allocation owned by
//! the tree is summed, plus a fixed per-allocation overhead mirroring the
//! allocator/object-header cost that the paper's `object[]` model charges
//! (16 bytes per object).

use crate::node::Node;
use crate::tree::PhTree;

/// Assumed allocator overhead per heap allocation, in bytes (malloc
/// header / alignment slack; equals the paper's assumed Java object
/// header).
pub const ALLOC_OVERHEAD: usize = 16;

/// Bytes of the `Arc` control block preceding each node allocation
/// (strong + weak refcounts). Nodes live behind `Arc`s so tree
/// versions can share structure (copy-on-write snapshots); the two
/// counters are the entire per-node cost of that capability.
pub const ARC_HEADER: usize = 2 * std::mem::size_of::<usize>();

/// Structural statistics of a [`PhTree`], from [`PhTree::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TreeStats {
    /// Number of entries stored.
    pub entries: usize,
    /// Number of nodes.
    pub nodes: usize,
    /// Nodes currently in full-hypercube (HC) representation.
    pub hc_nodes: usize,
    /// Nodes currently in linear (LHC) representation.
    pub lhc_nodes: usize,
    /// Maximum node depth (root = 1).
    pub max_depth: usize,
    /// Total heap bytes owned by the tree, including per-allocation
    /// overhead ([`ALLOC_OVERHEAD`]).
    pub total_bytes: usize,
    /// Bytes held in per-node packed bit buffers (infixes, hypercube
    /// addresses, child kinds and postfixes).
    pub bit_bytes: usize,
    /// Number of heap allocations.
    pub allocations: usize,
}

impl TreeStats {
    /// Average bytes per stored entry (the paper's space metric).
    pub fn bytes_per_entry(&self) -> f64 {
        if self.entries == 0 {
            0.0
        } else {
            self.total_bytes as f64 / self.entries as f64
        }
    }

    /// Entry-to-node ratio `r_e/n` (Sect. 3.4); higher is better.
    pub fn entries_per_node(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            self.entries as f64 / self.nodes as f64
        }
    }
}

fn node_stats<V, const K: usize>(n: &Node<V, K>, depth: usize, s: &mut TreeStats) {
    s.nodes += 1;
    s.max_depth = s.max_depth.max(depth);
    s.entries += n.n_posts();
    if n.is_hc() {
        s.hc_nodes += 1;
    } else {
        s.lhc_nodes += 1;
    }
    // The node's own allocation: `Arc<Node>` puts the refcount control
    // block and the node struct in one heap block.
    s.allocations += 1;
    s.total_bytes += ARC_HEADER + std::mem::size_of::<Node<V, K>>() + ALLOC_OVERHEAD;
    // The packed bit string.
    let bb = n.bits.heap_bytes();
    if bb > 0 {
        s.allocations += 1;
        s.total_bytes += bb + ALLOC_OVERHEAD;
        s.bit_bytes += bb;
    }
    // Sub-node vector: one pointer per child (the child structs are
    // separate `Arc` allocations, charged above when visited). Charged
    // at *capacity*, not length — amortised growth leaves slack that is
    // real heap usage until a shrink pass releases it.
    if n.subs.capacity() > 0 {
        s.allocations += 1;
        s.total_bytes +=
            n.subs.capacity() * std::mem::size_of::<std::sync::Arc<Node<V, K>>>() + ALLOC_OVERHEAD;
    }
    // Value vector, likewise at capacity (no heap at all for zero-sized
    // values — a ZST Vec reports usize::MAX capacity without allocating).
    if std::mem::size_of::<V>() > 0 && n.values.capacity() > 0 {
        s.allocations += 1;
        s.total_bytes += n.values.capacity() * std::mem::size_of::<V>() + ALLOC_OVERHEAD;
    }
    for sub in n.subs.iter() {
        node_stats(sub, depth + 1, s);
    }
}

impl<V, const K: usize> PhTree<V, K> {
    /// Computes structural statistics by walking the whole tree (O(n)).
    ///
    /// Bytes shared with other tree versions (clones/snapshots) are
    /// charged in full to every version referencing them: the figure is
    /// "bytes this tree keeps alive", not a marginal cost.
    pub fn stats(&self) -> TreeStats {
        let mut s = TreeStats::default();
        if let Some(r) = self.root.as_deref() {
            node_stats(r, 1, &mut s);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use crate::PhTree;

    #[test]
    fn empty_tree_stats() {
        let t: PhTree<(), 2> = PhTree::new();
        let s = t.stats();
        assert_eq!(s.nodes, 0);
        assert_eq!(s.entries, 0);
        assert_eq!(s.total_bytes, 0);
        assert_eq!(s.bytes_per_entry(), 0.0);
    }

    #[test]
    fn entry_count_matches_len() {
        let mut t: PhTree<u32, 3> = PhTree::new();
        for i in 0..500u64 {
            t.insert([i * 7919 % 4096, i, i * i % 977], i as u32);
        }
        let s = t.stats();
        assert_eq!(s.entries, t.len());
        assert!(s.nodes >= 1);
        assert_eq!(s.hc_nodes + s.lhc_nodes, s.nodes);
        assert!(s.max_depth <= 64);
        assert!(s.total_bytes > 0);
        assert!(s.entries_per_node() > 1.0, "paper: r_e/n > 1 for n > 1");
    }

    #[test]
    fn depth_bounded_by_w() {
        // Power-of-two chain: the deepest possible tree.
        let mut t: PhTree<(), 1> = PhTree::new();
        t.insert([0], ());
        for b in 0..64 {
            t.insert([1u64 << b], ());
        }
        let s = t.stats();
        assert!(s.max_depth <= 64, "depth {} exceeds w", s.max_depth);
    }

    #[test]
    fn shrink_reduces_or_keeps_bytes() {
        let mut t: PhTree<u64, 2> = PhTree::new();
        for i in 0..2000u64 {
            t.insert([i, i.wrapping_mul(0x9E3779B97F4A7C15)], i);
        }
        let before = t.stats().total_bytes;
        t.shrink_to_fit();
        let after = t.stats().total_bytes;
        assert!(after <= before);
    }

    #[test]
    fn clustered_data_is_smaller_than_uniform() {
        // Prefix sharing: a dense cluster (a 64×64 grid in the low bits
        // under a long shared prefix) must use fewer bytes/entry and have
        // a better entry-to-node ratio than the same number of uniformly
        // scattered keys (Sect. 3.4 best case vs. typical case).
        let mut clustered: PhTree<(), 2> = PhTree::new();
        for i in 0..4096u64 {
            clustered.insert(
                [
                    0xFFFF_0000_0000_0000 | (i & 0x3F),
                    0xFFFF_0000_0000_0000 | (i >> 6),
                ],
                (),
            );
        }
        let mut scattered: PhTree<(), 2> = PhTree::new();
        let mut x = 9u64;
        while scattered.len() < 4096 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let y = x.wrapping_mul(0x9E3779B97F4A7C15);
            scattered.insert([x, y], ());
        }
        clustered.shrink_to_fit();
        scattered.shrink_to_fit();
        let (cs, ss) = (clustered.stats(), scattered.stats());
        assert!(
            cs.bytes_per_entry() < ss.bytes_per_entry(),
            "clustered {:.1} B/e should beat scattered {:.1} B/e",
            cs.bytes_per_entry(),
            ss.bytes_per_entry()
        );
        assert!(cs.entries_per_node() > ss.entries_per_node());
    }

    /// The paper's second worst case (Fig. 4b, powers of two): a line of
    /// keys each deviating at a different bit gives an entry-to-node
    /// ratio barely above 1.
    #[test]
    fn line_data_has_bad_entry_to_node_ratio() {
        let mut line: PhTree<(), 2> = PhTree::new();
        for i in 0..4000u64 {
            line.insert([i, i * 3], ());
        }
        let s = line.stats();
        // Chains of one-post+one-sub nodes drive the ratio towards 1.0
        // (the paper's Fig. 4b example has 5/4 = 1.25).
        assert!(s.entries_per_node() >= 1.0);
        assert!(s.entries_per_node() < 2.5, "got {}", s.entries_per_node());
    }
}
