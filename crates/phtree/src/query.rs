//! Window (range) queries — Sect. 3.5 of the paper.
//!
//! A window query takes a lower-left and an upper-right corner and
//! returns every stored key inside the axis-aligned hyper-rectangle. The
//! iterator walks the tree depth-first; within each node it enumerates
//! only hypercube addresses that can possibly intersect the query, using
//! the two masks `mL`/`mU` and the constant-time successor function of
//! [`phbits::hc`]. Sub-nodes are pruned by prefix-region intersection.

use crate::node::{Node, SlotRef};
use crate::telemetry::Visits;
use crate::tree::PhTree;
use phbits::{hc, num};

/// Iterator over all entries within a query rectangle, returned by
/// [`PhTree::query`].
///
/// Yields `([u64; K], &V)` pairs in depth-first (Z-order-ish) order —
/// not globally sorted.
pub struct Query<'t, V, const K: usize> {
    min: [u64; K],
    max: [u64; K],
    /// Approximation slack (Sect. 5 outlook / Nickerson & Shi): a node
    /// whose region spans at most `2^slack_bits` per dimension and
    /// intersects the query is reported wholesale, without exact
    /// boundary checks. 0 = exact.
    slack_bits: u32,
    stack: Vec<Frame<'t, V, K>>,
    /// Nodes visited over the iterator's lifetime, reported to the
    /// telemetry sink on drop (ZST when the `metrics` feature is off).
    vis: Visits,
}

#[cfg(feature = "metrics")]
impl<V, const K: usize> Drop for Query<'_, V, K> {
    fn drop(&mut self) {
        crate::telemetry::record_op(crate::telemetry::TreeOp::Query, self.vis);
    }
}

enum Cursor {
    /// Next LHC child index to examine, plus its dense post rank and the
    /// node's postfix base offset, tracked incrementally so each step
    /// avoids the O(children) rank popcount.
    Lhc {
        idx: usize,
        pr: usize,
        pf_base: usize,
    },
    /// Next HC address to examine, `None` when exhausted.
    Hc(Option<u64>),
}

impl Cursor {
    fn lhc<V, const K: usize>(node: &Node<V, K>, idx: usize) -> Self {
        let (pr, pf_base) = node.lhc_scan_state(idx);
        Cursor::Lhc { idx, pr, pf_base }
    }
}

struct Frame<'t, V, const K: usize> {
    node: &'t Node<V, K>,
    /// The node's prefix: bits above `post_len` are the path/infix bits,
    /// bits at and below `post_len` are cleared. This is also the
    /// node region's minimum corner.
    prefix: [u64; K],
    m_l: u64,
    m_u: u64,
    /// The node's region lies entirely inside the query box: every
    /// entry below it matches without further checks, and sub-node
    /// regions need no intersection test (paper Sect. 3.5: "the query
    /// iterator can simply iterate through all elements").
    inside: bool,
    cursor: Cursor,
}

/// Clears bits `0..=bit` of every dimension.
#[inline]
fn clear_low(key: &mut [u64], bit: u32) {
    let m = !num::low_mask(bit + 1);
    for v in key.iter_mut() {
        *v &= m;
    }
}

impl<'t, V, const K: usize> Query<'t, V, K> {
    pub(crate) fn new(
        tree: &'t PhTree<V, K>,
        min: [u64; K],
        max: [u64; K],
        slack_bits: u32,
    ) -> Self {
        let mut q = Query {
            min,
            max,
            slack_bits,
            stack: Vec::with_capacity(16),
            vis: Visits::new(),
        };
        if let Some(root) = tree.root.as_deref() {
            q.push_node(root, [0u64; K]);
        }
        q
    }

    /// Pushes a frame for `node` whose region minimum is `prefix` (low
    /// bits cleared), if the region intersects the query.
    fn push_node(&mut self, node: &'t Node<V, K>, prefix: [u64; K]) {
        let span = num::low_mask(node.post_len as u32 + 1);
        let mut inside = true;
        for (d, &p) in prefix.iter().enumerate() {
            if p > self.max[d] || p | span < self.min[d] {
                return;
            }
            inside &= self.min[d] <= p && p | span <= self.max[d];
        }
        // Approximate mode: small intersecting nodes count as inside.
        let inside = inside || (node.post_len as u32) < self.slack_bits;
        let (m_l, m_u) = if inside {
            // Every slot matches; iterate the full cube.
            (0, num::low_mask(K as u32))
        } else {
            hc::masks(&prefix, &self.min, &self.max, node.post_len as u32)
        };
        if m_l & !m_u != 0 {
            return; // contradictory: no slot can match
        }
        self.vis.bump();
        let cursor = if node.is_hc() {
            Cursor::Hc(Some(hc::first_addr(m_l, m_u)))
        } else {
            Cursor::lhc(node, node.lhc_lower_bound(m_l))
        };
        self.stack.push(Frame {
            node,
            prefix,
            m_l,
            m_u,
            inside,
            cursor,
        });
    }

    /// Pushes a frame for a node known to lie entirely inside the query.
    fn push_node_inside(&mut self, node: &'t Node<V, K>, prefix: [u64; K]) {
        self.vis.bump();
        let cursor = if node.is_hc() {
            Cursor::Hc(Some(0))
        } else {
            Cursor::lhc(node, 0)
        };
        self.stack.push(Frame {
            node,
            prefix,
            m_l: 0,
            m_u: num::low_mask(K as u32),
            inside: true,
            cursor,
        });
    }

    /// Advances the top frame to its next candidate slot.
    fn next_candidate(&mut self) -> Option<(u64, SlotRef<'t, V, K>)> {
        let frame = self.stack.last_mut()?;
        let node = frame.node;
        match &mut frame.cursor {
            Cursor::Lhc { idx, pr, pf_base } => {
                while *idx < node.lhc_len() {
                    let (h, slot) = node.lhc_at_ranked(*idx, *pr, *pf_base);
                    *idx += 1;
                    if matches!(slot, SlotRef::Post { .. }) {
                        *pr += 1;
                    }
                    if h > frame.m_u {
                        break; // beyond the largest possible match
                    }
                    if hc::addr_valid(h, frame.m_l, frame.m_u) {
                        return Some((h, slot));
                    }
                }
            }
            Cursor::Hc(next) => {
                while let Some(h) = *next {
                    *next = hc::next_addr(h, frame.m_l, frame.m_u);
                    if let Some(slot) = node.get_slot(h) {
                        return Some((h, slot));
                    }
                }
            }
        }
        None
    }
}

impl<'t, V, const K: usize> Iterator for Query<'t, V, K> {
    type Item = ([u64; K], &'t V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let frame = self.stack.last()?;
            let (node, prefix, post_len, inside) =
                (frame.node, frame.prefix, frame.node.post_len, frame.inside);
            match self.next_candidate() {
                None => {
                    self.stack.pop();
                }
                Some((h, SlotRef::Post { pf_off, value })) => {
                    let mut key = prefix;
                    hc::apply_addr(&mut key, h, post_len as u32);
                    node.read_postfix_into(pf_off, &mut key);
                    if inside || (0..K).all(|d| self.min[d] <= key[d] && key[d] <= self.max[d]) {
                        return Some((key, value));
                    }
                }
                Some((h, SlotRef::Sub(sub))) => {
                    let mut child_prefix = prefix;
                    hc::apply_addr(&mut child_prefix, h, post_len as u32);
                    sub.read_infix_into(&mut child_prefix);
                    clear_low(&mut child_prefix, sub.post_len as u32);
                    if inside {
                        self.push_node_inside(sub, child_prefix);
                    } else {
                        self.push_node(sub, child_prefix);
                    }
                }
            }
        }
    }
}

impl<V, const K: usize> PhTree<V, K> {
    /// Window query: iterates over all entries with
    /// `min[d] <= key[d] <= max[d]` in every dimension `d`.
    ///
    /// ```
    /// let mut t: phtree::PhTree<(), 2> = phtree::PhTree::new();
    /// for x in 0..10u64 {
    ///     for y in 0..10u64 {
    ///         t.insert([x, y], ());
    ///     }
    /// }
    /// assert_eq!(t.query(&[2, 3], &[4, 5]).count(), 3 * 3);
    /// ```
    pub fn query(&self, min: &[u64; K], max: &[u64; K]) -> Query<'_, V, K> {
        Query::new(self, *min, *max, 0)
    }

    /// Approximate window query (the future extension the paper adopts
    /// from Nickerson & Shi, Sect. 2/5: trading accuracy at the window
    /// edges for fewer visited nodes).
    ///
    /// Returns a **superset** of [`PhTree::query`]: any node whose
    /// region spans at most `2^slack_bits` per dimension and touches the
    /// window is reported wholesale, skipping all boundary checks below
    /// it. Every reported key therefore lies within `2^slack_bits − 1`
    /// of the window in each dimension; `slack_bits = 0` is exact.
    ///
    /// ```
    /// let mut t: phtree::PhTree<(), 2> = phtree::PhTree::new();
    /// for x in 0..32u64 {
    ///     for y in 0..32u64 {
    ///         t.insert([x, y], ());
    ///     }
    /// }
    /// let exact = t.query(&[8, 8], &[23, 23]).count();
    /// let approx = t.query_approx(&[8, 8], &[23, 23], 2).count();
    /// assert!(approx >= exact);
    /// // All extra results are within 2^2 - 1 = 3 of the window.
    /// for (k, _) in t.query_approx(&[8, 8], &[23, 23], 2) {
    ///     assert!(k[0] >= 5 && k[0] <= 26 && k[1] >= 5 && k[1] <= 26);
    /// }
    /// ```
    pub fn query_approx(&self, min: &[u64; K], max: &[u64; K], slack_bits: u32) -> Query<'_, V, K> {
        Query::new(self, *min, *max, slack_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute<V, const K: usize>(
        entries: &[([u64; K], V)],
        min: &[u64; K],
        max: &[u64; K],
    ) -> Vec<[u64; K]> {
        let mut v: Vec<[u64; K]> = entries
            .iter()
            .filter(|(k, _)| (0..K).all(|d| min[d] <= k[d] && k[d] <= max[d]))
            .map(|(k, _)| *k)
            .collect();
        v.sort();
        v
    }

    fn run_query<V, const K: usize>(
        t: &PhTree<V, K>,
        min: &[u64; K],
        max: &[u64; K],
    ) -> Vec<[u64; K]> {
        let mut v: Vec<[u64; K]> = t.query(min, max).map(|(k, _)| k).collect();
        v.sort();
        v
    }

    #[test]
    fn empty_tree_query() {
        let t: PhTree<(), 2> = PhTree::new();
        assert_eq!(t.query(&[0, 0], &[u64::MAX, u64::MAX]).count(), 0);
    }

    #[test]
    fn grid_queries() {
        let mut t: PhTree<u64, 2> = PhTree::new();
        let mut entries = Vec::new();
        for x in 0..16u64 {
            for y in 0..16u64 {
                t.insert([x, y], x * 16 + y);
                entries.push(([x, y], x * 16 + y));
            }
        }
        for (min, max) in [
            ([0, 0], [15, 15]),
            ([3, 3], [3, 3]),
            ([5, 0], [9, 15]),
            ([12, 13], [2, 3]), // empty: min > max
            ([10, 10], [255, 255]),
        ] {
            assert_eq!(run_query(&t, &min, &max), brute(&entries, &min, &max));
        }
    }

    #[test]
    fn full_range_query_returns_everything() {
        let mut t: PhTree<(), 3> = PhTree::new();
        let keys: Vec<[u64; 3]> = (0..300u64)
            .map(|i| [i.wrapping_mul(0x9E3779B97F4A7C15), i * i, i])
            .collect();
        for &k in &keys {
            t.insert(k, ());
        }
        let got = run_query(&t, &[0; 3], &[u64::MAX; 3]);
        let mut want = keys.clone();
        want.sort();
        want.dedup();
        assert_eq!(got, want);
    }

    #[test]
    fn skewed_boolean_dimension() {
        // The paper's worst case: one dimension holds only 0/1.
        let mut t: PhTree<(), 2> = PhTree::new();
        let mut entries = Vec::new();
        for i in 0..200u64 {
            let k = [i, i % 2];
            t.insert(k, ());
            entries.push((k, ()));
        }
        let (min, max) = ([0u64, 1], [u64::MAX, 1]);
        assert_eq!(run_query(&t, &min, &max), brute(&entries, &min, &max));
    }

    #[test]
    fn query_with_extreme_bounds() {
        let mut t: PhTree<(), 1> = PhTree::new();
        for k in [0u64, 1, u64::MAX - 1, u64::MAX, 1 << 63] {
            t.insert([k], ());
        }
        assert_eq!(run_query(&t, &[0], &[u64::MAX]).len(), 5);
        assert_eq!(run_query(&t, &[u64::MAX], &[u64::MAX]), vec![[u64::MAX]]);
        assert_eq!(run_query(&t, &[1], &[1 << 63]), vec![[1], [1 << 63]]);
    }

    #[test]
    fn query_respects_all_dimensions() {
        let mut t: PhTree<(), 4> = PhTree::new();
        let mut entries = Vec::new();
        for i in 0..500u64 {
            let k = [i % 7, i % 11, i % 13, i % 17];
            if t.insert(k, ()).is_none() {
                entries.push((k, ()));
            }
        }
        let min = [1, 2, 3, 4];
        let max = [5, 8, 10, 12];
        assert_eq!(run_query(&t, &min, &max), brute(&entries, &min, &max));
    }
}

#[cfg(test)]
mod approx_tests {
    use crate::PhTree;

    #[test]
    fn approx_zero_slack_is_exact() {
        let mut t: PhTree<(), 2> = PhTree::new();
        for x in 0..64u64 {
            for y in 0..64u64 {
                t.insert([x, y], ());
            }
        }
        let exact: Vec<_> = t.query(&[10, 20], &[30, 40]).map(|(k, _)| k).collect();
        let approx: Vec<_> = t
            .query_approx(&[10, 20], &[30, 40], 0)
            .map(|(k, _)| k)
            .collect();
        assert_eq!(exact, approx);
    }

    #[test]
    fn approx_slack_bounds_extra_results() {
        let mut t: PhTree<(), 1> = PhTree::new();
        for x in 0..1024u64 {
            t.insert([x], ());
        }
        let exact = t.query(&[100], &[200]).count();
        for slack in [1u32, 3, 5] {
            let eps = (1u64 << slack) - 1;
            let mut min_seen = u64::MAX;
            let mut max_seen = 0;
            let mut n = 0;
            for (k, _) in t.query_approx(&[100], &[200], slack) {
                min_seen = min_seen.min(k[0]);
                max_seen = max_seen.max(k[0]);
                n += 1;
            }
            assert!(n >= exact);
            assert!(min_seen >= 100 - eps, "slack {slack}: {min_seen}");
            assert!(max_seen <= 200 + eps, "slack {slack}: {max_seen}");
        }
    }

    #[test]
    fn approx_on_huge_slack_returns_everything_intersecting() {
        let mut t: PhTree<(), 2> = PhTree::new();
        for i in 0..100u64 {
            t.insert([i, 1000 - i], ());
        }
        // Slack 64 makes every intersecting node "inside".
        let n = t.query_approx(&[50, 900], &[60, 1000], 63).count();
        assert!(n >= t.query(&[50, 900], &[60, 1000]).count());
        assert!(n <= 100);
    }

    #[test]
    fn query_on_hc_nodes() {
        // A dense 2-bit grid forces HC representation at the bottom;
        // queries must traverse HC nodes via the mask successor.
        let mut t: PhTree<u8, 2> = PhTree::new();
        for x in 0..16u64 {
            for y in 0..16u64 {
                t.insert([x, y], (x * 16 + y) as u8);
            }
        }
        assert!(t.stats().hc_nodes > 0, "grid must produce HC nodes");
        let hits: Vec<_> = t.query(&[3, 5], &[6, 9]).collect();
        assert_eq!(hits.len(), 4 * 5);
        for (k, &v) in hits {
            assert_eq!(v as u64, k[0] * 16 + k[1]);
        }
    }

    #[test]
    fn empty_window_between_points() {
        let mut t: PhTree<(), 2> = PhTree::new();
        t.insert([0, 0], ());
        t.insert([100, 100], ());
        assert_eq!(t.query(&[10, 10], &[90, 90]).count(), 0);
    }
}
