//! PH-tree nodes: hypercube child addressing, adaptive HC/LHC
//! representation and per-node bit-stream storage.
//!
//! Every node splits the space in all `K` dimensions at one bit position
//! (its *split bit*, `post_len`). A child is addressed by the `K`-bit
//! hypercube address formed from bit `post_len` of each dimension. Below
//! the split, a child is either a **postfix entry** (the remaining
//! `post_len` bits per dimension plus a user value) or a **sub-node**.
//!
//! Following the paper's Sect. 3.4, almost everything a node stores
//! lives in a *single packed bit string*:
//!
//! * **LHC** (linear hypercube, sparse nodes):
//!   `[infix | sorted addresses: n·K bits | kind bits: n | postfixes]`
//!   — lookup by binary search over the packed address fields.
//! * **HC** (full hypercube, dense nodes):
//!   `[infix | 2-bit slot kinds: 2·2^K bits | postfixes at fixed
//!   stride]` — O(1) lookup, no bit shifting on update.
//!
//! The only data outside the bit string are the things that cannot be
//! bits: child nodes (`subs`, a vector in address order) and user
//! values (`values`, likewise; zero-sized value types occupy no heap at
//! all). Both vectors grow geometrically, so a node absorbing entries
//! pays an amortised O(1) allocations per child instead of an exact-fit
//! reallocate-and-copy on every structural update; a shrink pass
//! ([`Node::shrink_repr`]) releases the slack, and bulk construction
//! ([`Node::from_children`]) allocates at exact final size up front.
//! Dense ranks ("how many postfix entries precede address h") are
//! answered by word-wise popcounts over the packed kind bits.
//!
//! The representation is chosen per node by comparing the exact bit
//! cost of both forms — `n·(k+1) + n_post·post_bits` for LHC versus
//! `2^k·(2 + post_bits)` for HC — recomputed on every structural
//! update, mirroring the paper's size comparison.

use crate::config::ReprMode;
use phbits::BitBuf;
use std::sync::Arc;

/// Bits per dimension; the paper's `w`. Fixed to 64 in this
/// implementation (the experiments all use 64-bit values).
pub const W: u32 = 64;

/// Largest `K` for which a node may materialise a full `2^K` hypercube
/// kind table. Beyond this the size comparison would overflow; such
/// nodes always stay in LHC form.
const MAX_HC_K: usize = 22;

/// HC slot kind codes (2 bits each in the kind table).
const KIND_EMPTY: u64 = 0;
const KIND_POST: u64 = 1;
const KIND_SUB: u64 = 2;

/// A child extracted from a node (used when merging one-child nodes).
pub(crate) enum Child<V, const K: usize> {
    /// A postfix entry's value (the postfix bits live in the node).
    Post(V),
    /// A sub-node.
    Sub(Node<V, K>),
}

/// Result of a lightweight, borrow-free slot probe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Probe {
    /// The slot is empty.
    Empty,
    /// The slot holds a postfix entry whose record starts at `pf_off`.
    Post { pf_off: usize },
    /// The slot holds a sub-node.
    Sub,
}

/// Read-only view of an occupied hypercube slot.
pub(crate) enum SlotRef<'a, V, const K: usize> {
    /// A postfix entry: bit offset of its postfix record in the node's
    /// buffer, and the value.
    Post { pf_off: usize, value: &'a V },
    /// A sub-node.
    Sub(&'a Node<V, K>),
}

/// A PH-tree node. See the module docs for the storage layout.
#[derive(Clone)]
pub(crate) struct Node<V, const K: usize> {
    /// Number of key bits per dimension below this node's split bit;
    /// also the split bit position itself (0 = LSB).
    pub post_len: u8,
    /// Number of prefix bits per dimension stored in this node's infix.
    pub infix_len: u8,
    /// Whether the node is in HC (full hypercube) form.
    hc: bool,
    /// The packed bit string (see module docs).
    pub bits: BitBuf,
    /// Sub-node children in hypercube-address order, each behind an
    /// `Arc` so whole subtrees are structurally shared between tree
    /// versions (copy-on-write: mutation goes through
    /// [`Arc::make_mut`], which copies a node only while another
    /// version still references it). Capacity may exceed the length
    /// (amortised growth); [`Node::shrink_repr`] releases the slack.
    pub subs: Vec<Arc<Node<V, K>>>,
    /// Values of postfix entries in hypercube-address order. Capacity
    /// may exceed the length, as for `subs`.
    pub values: Vec<V>,
}

/// A finished child handed to [`Node::from_children`] during bottom-up
/// bulk construction.
pub(crate) enum BulkChild<V, const K: usize> {
    /// A postfix entry: the full key (the node extracts the low
    /// `post_len` bits) and its value.
    Post { key: [u64; K], value: V },
    /// An already-built sub-node.
    Sub(Node<V, K>),
}

impl<V, const K: usize> Node<V, K> {
    /// Reassembles a node from serialised parts (see [`crate::raw`]).
    /// Performs consistency checks; returns a description of the first
    /// violated invariant on mismatch — corrupt input must surface as an
    /// error, never a panic, so storage layers can map it into their own
    /// corruption reporting.
    pub fn from_parts(
        post_len: u8,
        infix_len: u8,
        hc: bool,
        bits: BitBuf,
        subs: Vec<Arc<Node<V, K>>>,
        values: Vec<V>,
    ) -> Result<Self, &'static str> {
        let n = Node {
            post_len,
            infix_len,
            hc,
            bits,
            subs,
            values,
        };
        n.validate_local()?;
        Ok(n)
    }

    /// Checks every *local* structural invariant of this node (plus the
    /// depth/arity relation to its direct children): split/infix bit
    /// budgets, the exact bit-string length for the claimed
    /// representation, slot-kind codes, kind/count agreement, LHC
    /// address ordering and range, and child depth chaining.
    ///
    /// This is the decode-side validation shared by [`Node::from_parts`]
    /// and [`Node::check_invariants`]; it must reject hostile bytes with
    /// an `Err`, never panic. Indexing into `bits` is safe here because
    /// the bit-length check runs before any kind/address reads.
    pub fn validate_local(&self) -> Result<(), &'static str> {
        if self.post_len as u32 >= W || self.post_len as u32 + (self.infix_len as u32) >= W {
            return Err("split/infix bits exceed key width");
        }
        let n = self.n_children();
        let posts = self.n_posts();
        // Bit-length formula must hold for the claimed representation
        // before anything below reads kinds or addresses out of `bits`.
        if self.hc {
            if K > MAX_HC_K {
                return Err("HC representation beyond dimension limit");
            }
            if self.bits.len() != self.infix_bits() + (1usize << K) * (2 + self.post_bits()) {
                return Err("HC bit-string length mismatch");
            }
            let mut seen_posts = 0;
            let mut seen_subs = 0;
            for h in 0..(1u64 << K) {
                match self.hc_kind(h) {
                    KIND_EMPTY => {}
                    KIND_POST => seen_posts += 1,
                    KIND_SUB => seen_subs += 1,
                    _ => return Err("invalid HC slot kind"),
                }
            }
            if seen_posts != posts || seen_subs != self.n_subs() {
                return Err("HC kind table disagrees with child counts");
            }
        } else {
            let ib = self.infix_bits();
            if self.bits.len() != ib + n * (K + 1) + posts * self.post_bits() {
                return Err("LHC bit-string length mismatch");
            }
            // Single pass: each address is read once and compared against
            // the previous one, and kind bits are counted in one
            // word-chunked popcount over the packed kind run.
            let mut prev = 0u64;
            for j in 0..n {
                let addr = self.bits.read_bits(ib + j * K, K as u32);
                if j > 0 && prev >= addr {
                    return Err("LHC addresses not sorted/unique");
                }
                if K < 64 && addr >= (1u64 << K) {
                    return Err("LHC address out of range");
                }
                prev = addr;
            }
            if self.bits.count_ones(ib + n * K, n) != self.n_subs() {
                return Err("LHC kind bits disagree with child counts");
            }
        }
        for sub in self.subs.iter() {
            if sub.post_len as u32 + sub.infix_len as u32 + 1 != self.post_len as u32 {
                return Err("child depth arithmetic broken");
            }
            if sub.n_children() < 2 {
                return Err("sub-node with fewer than 2 children");
            }
        }
        Ok(())
    }

    /// Whether the node is in HC form (serialisation accessor).
    pub fn hc_flag(&self) -> bool {
        self.hc
    }

    /// Creates an empty (LHC) node. `infix_len` bits per dimension of
    /// `key` (bits `post_len+1 ..= post_len+infix_len`) are recorded as
    /// the node's infix.
    pub fn new(post_len: u8, infix_len: u8, key: &[u64; K]) -> Self {
        debug_assert!((post_len as u32) < W);
        debug_assert!(post_len as u32 + (infix_len as u32) < W);
        let mut bits = BitBuf::with_capacity(infix_len as usize * K + 2 * (K + 1));
        bits.grow(infix_len as usize * K);
        let mut n = Node {
            post_len,
            infix_len,
            hc: false,
            bits,
            subs: Vec::new(),
            values: Vec::new(),
        };
        n.write_infix(key);
        n
    }

    /// Builds a node in one shot from its final set of children
    /// (bottom-up bulk construction).
    ///
    /// `children` must be sorted by hypercube address with no
    /// duplicates. The representation is chosen **once** from the final
    /// child counts (the same cost comparison
    /// [`Node::maybe_switch_repr`] applies incrementally), and the bit
    /// string and child vectors are allocated at exact final size — no
    /// per-child reallocation, no capacity slack, and no HC⇄LHC
    /// flip-flopping on the way up. The result is byte-identical to the
    /// node sequential insertion would converge to, because the
    /// representation and layout are pure functions of the contents.
    pub(crate) fn from_children(
        post_len: u8,
        infix_len: u8,
        key: &[u64; K],
        children: Vec<(u64, BulkChild<V, K>)>,
        mode: ReprMode,
    ) -> Self {
        debug_assert!(children.windows(2).all(|w| w[0].0 < w[1].0));
        let n = children.len();
        let posts = children
            .iter()
            .filter(|(_, c)| matches!(c, BulkChild::Post { .. }))
            .count();
        let n_subs = n - posts;
        let ib = infix_len as usize * K;
        let pb = post_len as usize * K;
        let lhc_cost = n * (K + 1) + posts * pb;
        let hc_cost = if K > MAX_HC_K {
            usize::MAX
        } else {
            (1usize << K) * (2 + pb)
        };
        let hc = match mode {
            ReprMode::ForceLhc => false,
            ReprMode::ForceHc => K <= MAX_HC_K,
            ReprMode::Adaptive => hc_cost < lhc_cost,
        };
        let nbits = ib + if hc { hc_cost } else { lhc_cost };
        let mut node = Node {
            post_len,
            infix_len,
            hc,
            bits: BitBuf::zeroed(nbits),
            subs: Vec::with_capacity(n_subs),
            values: Vec::with_capacity(posts),
        };
        node.write_infix(key);
        if hc {
            let pf_base = node.hc_pf_base();
            for (h, child) in children {
                let kind_off = node.hc_kind_off(h);
                match child {
                    BulkChild::Post { key, value } => {
                        node.bits.write_bits(kind_off, KIND_POST, 2);
                        node.write_postfix_at(pf_base + h as usize * pb, &key);
                        node.values.push(value);
                    }
                    BulkChild::Sub(sub) => {
                        node.bits.write_bits(kind_off, KIND_SUB, 2);
                        node.subs.push(Arc::new(sub));
                    }
                }
            }
        } else {
            let pf_base = ib + n * (K + 1);
            let mut pr = 0usize;
            for (j, (h, child)) in children.into_iter().enumerate() {
                node.bits.write_bits(ib + j * K, h, K as u32);
                match child {
                    BulkChild::Post { key, value } => {
                        node.write_postfix_at(pf_base + pr * pb, &key);
                        node.values.push(value);
                        pr += 1;
                    }
                    BulkChild::Sub(sub) => {
                        node.bits.set(ib + n * K + j, true);
                        node.subs.push(Arc::new(sub));
                    }
                }
            }
        }
        node
    }

    #[inline]
    pub fn infix_bits(&self) -> usize {
        self.infix_len as usize * K
    }

    #[inline]
    pub fn post_bits(&self) -> usize {
        self.post_len as usize * K
    }

    /// Number of locally stored entries (postfixes).
    #[inline]
    pub fn n_posts(&self) -> usize {
        self.values.len()
    }

    /// Number of sub-node children.
    #[inline]
    pub fn n_subs(&self) -> usize {
        self.subs.len()
    }

    /// Number of occupied hypercube slots.
    #[inline]
    pub fn n_children(&self) -> usize {
        self.n_posts() + self.n_subs()
    }

    #[inline]
    pub fn is_hc(&self) -> bool {
        self.hc
    }

    // ------------------------------------------------------------------
    // Infix handling
    // ------------------------------------------------------------------

    /// Records bits `post_len+1 ..= post_len+infix_len` of each dimension
    /// of `key` as this node's infix (one scatter pass over the packed
    /// run).
    pub fn write_infix(&mut self, key: &[u64; K]) {
        let il = self.infix_len as u32;
        if il == 0 {
            return;
        }
        self.bits.write_key(0, il, self.post_len as u32 + 1, key);
    }

    /// Copies the stored infix into the corresponding bit range of `key`
    /// (one gather pass over the packed run).
    pub fn read_infix_into(&self, key: &mut [u64; K]) {
        let il = self.infix_len as u32;
        if il == 0 {
            return;
        }
        self.bits
            .read_key_into(0, il, self.post_len as u32 + 1, key);
    }

    /// Whether `key` matches this node's infix in every dimension.
    /// Fused per-dimension compare: runs once per node on the descent
    /// path, so avoiding the pack pass and its scratch matters at
    /// small K where descent is deepest.
    pub fn infix_matches(&self, key: &[u64; K]) -> bool {
        let il = self.infix_len as u32;
        if il == 0 {
            return true;
        }
        self.bits.eq_key(0, il, self.post_len as u32 + 1, key)
    }

    /// Rewrites the infix to `new_len` bits per dimension taken from
    /// `key` (used when an infix is split or extended by node
    /// restructuring).
    pub fn reset_infix(&mut self, new_len: u8, key: &[u64; K], mode: ReprMode) {
        let old = self.infix_bits();
        self.infix_len = new_len;
        let new = self.infix_bits();
        if new < old {
            self.bits.remove_range(new, old - new);
        } else if new > old {
            self.bits.insert_gap(old, new - old);
        }
        self.write_infix(key);
        // The infix length feeds the HC/LHC size comparison only through
        // rounding, but keep the representation a pure function of the
        // node's final state.
        self.maybe_switch_repr(mode);
    }

    // ------------------------------------------------------------------
    // Layout offsets
    // ------------------------------------------------------------------

    /// LHC: bit offset of the address field of child `j` (given `n`
    /// children).
    #[inline]
    fn lhc_addr_off(&self, j: usize) -> usize {
        self.infix_bits() + j * K
    }

    /// LHC: bit offset of the kind bit of child `j`.
    #[inline]
    fn lhc_kind_off(&self, n: usize, j: usize) -> usize {
        self.infix_bits() + n * K + j
    }

    /// LHC: bit offset of the start of the postfix area.
    #[inline]
    fn lhc_pf_base(&self, n: usize) -> usize {
        self.infix_bits() + n * (K + 1)
    }

    /// HC: bit offset of slot `h`'s 2-bit kind.
    #[inline]
    fn hc_kind_off(&self, h: u64) -> usize {
        self.infix_bits() + 2 * h as usize
    }

    /// HC: bit offset of the start of the fixed-stride postfix area.
    #[inline]
    fn hc_pf_base(&self) -> usize {
        self.infix_bits() + 2 * (1usize << K)
    }

    /// LHC: address of child `j`.
    #[inline]
    pub fn lhc_addr_at(&self, j: usize) -> u64 {
        self.bits.read_bits(self.lhc_addr_off(j), K as u32)
    }

    /// LHC: whether child `j` is a sub-node.
    #[inline]
    fn lhc_is_sub(&self, j: usize) -> bool {
        self.bits.get(self.lhc_kind_off(self.n_children(), j))
    }

    /// LHC: number of postfix entries among children `0..j`.
    #[inline]
    fn lhc_post_rank(&self, j: usize) -> usize {
        let n = self.n_children();
        j - self.bits.count_ones(self.lhc_kind_off(n, 0), j)
    }

    /// HC: 2-bit kind of slot `h`.
    #[inline]
    fn hc_kind(&self, h: u64) -> u64 {
        self.bits.read_bits(self.hc_kind_off(h), 2)
    }

    /// HC: `(post_rank, sub_rank)` — counts of posts/subs in slots
    /// `0..h`, via word-wise popcounts over the packed kind table.
    fn hc_ranks(&self, h: u64) -> (usize, usize) {
        let base = self.infix_bits();
        let nbits = 2 * h as usize;
        let mut posts = 0usize;
        let mut subs = 0usize;
        let mut done = 0usize;
        while done < nbits {
            let chunk = (nbits - done).min(64) as u32;
            let w = self.bits.read_bits(base + done, chunk);
            // Kind 01 = post (low bit of the pair), kind 10 = sub.
            posts += (w & 0x5555_5555_5555_5555).count_ones() as usize;
            subs += (w & 0xAAAA_AAAA_AAAA_AAAA).count_ones() as usize;
            done += chunk as usize;
        }
        (posts, subs)
    }

    /// LHC: index of the first child with address `>= h` (also the
    /// insert position), or `Ok(j)` when child `j` has address `h`.
    ///
    /// The infix offset and child count are hoisted out of the binary
    /// search; each probe is a single word-level [`BitBuf::cmp_range`]
    /// against the packed address field.
    fn lhc_search(&self, h: u64) -> Result<usize, usize> {
        use std::cmp::Ordering;
        let ib = self.infix_bits();
        let n = self.n_children();
        let key = [h];
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = (lo + hi) / 2;
            match self.bits.cmp_range(ib + mid * K, &key, K) {
                Ordering::Less => lo = mid + 1,
                Ordering::Equal => return Ok(mid),
                Ordering::Greater => hi = mid,
            }
        }
        Err(lo)
    }

    /// For window queries: index of the first child with address `>= h`.
    pub fn lhc_lower_bound(&self, h: u64) -> usize {
        debug_assert!(!self.hc);
        match self.lhc_search(h) {
            Ok(j) | Err(j) => j,
        }
    }

    /// Number of LHC children (callers must check `!is_hc()`).
    #[inline]
    pub fn lhc_len(&self) -> usize {
        debug_assert!(!self.hc);
        self.n_children()
    }

    /// LHC: initial state for an incremental scan starting at child `j`:
    /// the dense post rank at `j` (one popcount) and the postfix area
    /// base offset. Feed both to [`Node::lhc_at_ranked`] and advance the
    /// rank on every postfix child; this turns the per-child rank
    /// popcount of [`Node::lhc_at`] into O(1) bookkeeping.
    pub fn lhc_scan_state(&self, j: usize) -> (usize, usize) {
        debug_assert!(!self.hc);
        (self.lhc_post_rank(j), self.lhc_pf_base(self.n_children()))
    }

    /// LHC: like [`Node::lhc_at`], but with the dense post rank `pr` of
    /// child `j` and the postfix base supplied by a caller tracking them
    /// incrementally (see [`Node::lhc_scan_state`]).
    pub fn lhc_at_ranked(&self, j: usize, pr: usize, pf_base: usize) -> (u64, SlotRef<'_, V, K>) {
        debug_assert!(!self.hc);
        debug_assert_eq!(pr, self.lhc_post_rank(j), "rank tracking out of sync");
        let addr = self.lhc_addr_at(j);
        let slot = if self.lhc_is_sub(j) {
            SlotRef::Sub(&self.subs[j - pr])
        } else {
            SlotRef::Post {
                pf_off: pf_base + pr * self.post_bits(),
                value: &self.values[pr],
            }
        };
        (addr, slot)
    }

    /// For LHC nodes: the address and slot at child index `j`.
    pub fn lhc_at(&self, j: usize) -> (u64, SlotRef<'_, V, K>) {
        debug_assert!(!self.hc);
        let addr = self.lhc_addr_at(j);
        let slot = if self.lhc_is_sub(j) {
            let sr = j - self.lhc_post_rank(j);
            SlotRef::Sub(&self.subs[sr])
        } else {
            let pr = self.lhc_post_rank(j);
            SlotRef::Post {
                pf_off: self.lhc_pf_base(self.n_children()) + pr * self.post_bits(),
                value: &self.values[pr],
            }
        };
        (addr, slot)
    }

    // ------------------------------------------------------------------
    // Postfix handling
    // ------------------------------------------------------------------

    /// Writes the low `post_len` bits of each dimension of `key` into the
    /// postfix record at bit offset `off` (which must already exist) in
    /// one scatter pass.
    fn write_postfix_at(&mut self, off: usize, key: &[u64; K]) {
        let pl = self.post_len as u32;
        if pl == 0 {
            return;
        }
        self.bits.write_key(off, pl, 0, key);
    }

    /// Reads the postfix record at bit offset `off` into the low bits of
    /// `key` (replacing them) in one gather pass.
    pub fn read_postfix_into(&self, off: usize, key: &mut [u64; K]) {
        let pl = self.post_len as u32;
        if pl == 0 {
            return;
        }
        self.bits.read_key_into(off, pl, 0, key);
    }

    /// Whether the postfix record at `off` equals the low bits of `key`:
    /// word-wise compare of the packed run against the packed key.
    pub fn postfix_matches(&self, off: usize, key: &[u64; K]) -> bool {
        // Fused per-dimension compare: point queries are 50 % misses, so
        // the first-mismatch early exit matters more than bulk compare.
        self.bits.eq_key(off, self.post_len as u32, 0, key)
    }

    // ------------------------------------------------------------------
    // Slot lookup
    // ------------------------------------------------------------------

    /// Looks up the slot for address `h`.
    #[inline]
    pub fn get_slot(&self, h: u64) -> Option<SlotRef<'_, V, K>> {
        if self.hc {
            match self.hc_kind(h) {
                KIND_EMPTY => None,
                KIND_POST => {
                    let (pr, _) = self.hc_ranks(h);
                    Some(SlotRef::Post {
                        pf_off: self.hc_pf_base() + h as usize * self.post_bits(),
                        value: &self.values[pr],
                    })
                }
                _ => {
                    let (_, sr) = self.hc_ranks(h);
                    Some(SlotRef::Sub(&self.subs[sr]))
                }
            }
        } else {
            match self.lhc_search(h) {
                Ok(j) => Some(self.lhc_at(j).1),
                Err(_) => None,
            }
        }
    }

    /// Lightweight slot probe carrying only `Copy` data, for use where a
    /// [`SlotRef`] borrow would conflict with subsequent mutation.
    #[inline]
    pub fn probe(&self, h: u64) -> Probe {
        if self.hc {
            match self.hc_kind(h) {
                KIND_EMPTY => Probe::Empty,
                KIND_POST => Probe::Post {
                    pf_off: self.hc_pf_base() + h as usize * self.post_bits(),
                },
                _ => Probe::Sub,
            }
        } else {
            match self.lhc_search(h) {
                Ok(j) => {
                    if self.lhc_is_sub(j) {
                        Probe::Sub
                    } else {
                        let pr = self.lhc_post_rank(j);
                        Probe::Post {
                            pf_off: self.lhc_pf_base(self.n_children()) + pr * self.post_bits(),
                        }
                    }
                }
                Err(_) => Probe::Empty,
            }
        }
    }

    /// Index into `values` of the postfix entry at `h`, if any.
    fn post_rank_of(&self, h: u64) -> Option<usize> {
        if self.hc {
            if self.hc_kind(h) == KIND_POST {
                Some(self.hc_ranks(h).0)
            } else {
                None
            }
        } else {
            match self.lhc_search(h) {
                Ok(j) if !self.lhc_is_sub(j) => Some(self.lhc_post_rank(j)),
                _ => None,
            }
        }
    }

    /// Index into `subs` of the sub-node at `h`, if any.
    fn sub_rank_of(&self, h: u64) -> Option<usize> {
        if self.hc {
            if self.hc_kind(h) == KIND_SUB {
                Some(self.hc_ranks(h).1)
            } else {
                None
            }
        } else {
            match self.lhc_search(h) {
                Ok(j) if self.lhc_is_sub(j) => Some(j - self.lhc_post_rank(j)),
                _ => None,
            }
        }
    }

    /// Mutable access to the value of the postfix entry at `h`.
    pub fn post_value_mut(&mut self, h: u64) -> Option<&mut V> {
        let pr = self.post_rank_of(h)?;
        Some(&mut self.values[pr])
    }

    // ------------------------------------------------------------------
    // Structural updates
    // ------------------------------------------------------------------

    /// Inserts a new postfix entry at (empty) address `h`.
    pub fn insert_post(&mut self, h: u64, key: &[u64; K], value: V, mode: ReprMode) {
        let pb = self.post_bits();
        if self.hc {
            debug_assert_eq!(
                self.hc_kind(h),
                KIND_EMPTY,
                "insert_post into occupied slot"
            );
            let (pr, _) = self.hc_ranks(h);
            let off = self.hc_kind_off(h);
            self.bits.write_bits(off, KIND_POST, 2);
            let pf = self.hc_pf_base() + h as usize * pb;
            self.write_postfix_at(pf, key);
            self.values.insert(pr, value);
        } else {
            let j = match self.lhc_search(h) {
                Err(j) => j,
                Ok(_) => panic!("insert_post into occupied slot"),
            };
            let n = self.n_children();
            let pr = self.lhc_post_rank(j);
            // One splice opens the address, kind and postfix gaps.
            self.bits.insert_gaps(&[
                (self.lhc_addr_off(j), K),
                (self.lhc_kind_off(n, j), 1), // zero = post
                (self.lhc_pf_base(n) + pr * pb, pb),
            ]);
            let n = n + 1;
            self.bits.write_bits(self.lhc_addr_off(j), h, K as u32);
            let pf = self.lhc_pf_base(n) + pr * pb;
            self.write_postfix_at(pf, key);
            self.values.insert(pr, value);
        }
        self.maybe_switch_repr(mode);
    }

    /// Inserts a sub-node at (empty) address `h`. Accepts an owned
    /// node or an already-shared `Arc<Node>` (the path-copy code moves
    /// shared subtrees between nodes without deep-copying them).
    pub fn insert_sub(&mut self, h: u64, sub: impl Into<Arc<Node<V, K>>>, mode: ReprMode) {
        let sub = sub.into();
        if self.hc {
            debug_assert_eq!(self.hc_kind(h), KIND_EMPTY, "insert_sub into occupied slot");
            let (_, sr) = self.hc_ranks(h);
            let off = self.hc_kind_off(h);
            self.bits.write_bits(off, KIND_SUB, 2);
            self.subs.insert(sr, sub);
        } else {
            let j = match self.lhc_search(h) {
                Err(j) => j,
                Ok(_) => panic!("insert_sub into occupied slot"),
            };
            let n = self.n_children();
            let sr = j - self.lhc_post_rank(j);
            self.bits
                .insert_gaps(&[(self.lhc_addr_off(j), K), (self.lhc_kind_off(n, j), 1)]);
            let n = n + 1;
            self.bits.write_bits(self.lhc_addr_off(j), h, K as u32);
            self.bits.set(self.lhc_kind_off(n, j), true); // kind 1 = sub
            self.subs.insert(sr, sub);
        }
        self.maybe_switch_repr(mode);
    }

    /// Removes the postfix entry at `h`, returning its value.
    pub fn remove_post(&mut self, h: u64, mode: ReprMode) -> V {
        let pb = self.post_bits();
        let v = if self.hc {
            assert_eq!(self.hc_kind(h), KIND_POST, "remove_post on non-post slot");
            let (pr, _) = self.hc_ranks(h);
            let off = self.hc_kind_off(h);
            self.bits.write_bits(off, KIND_EMPTY, 2);
            // Clear the stale postfix slot for determinism.
            let pf = self.hc_pf_base() + h as usize * pb;
            let zero: [u64; K] = [0; K];
            self.write_postfix_at(pf, &zero);
            self.values.remove(pr)
        } else {
            let j = self.lhc_search(h).expect("remove_post: empty slot");
            assert!(!self.lhc_is_sub(j), "remove_post on sub slot");
            let n = self.n_children();
            let pr = self.lhc_post_rank(j);
            self.bits.remove_ranges(&[
                (self.lhc_addr_off(j), K),
                (self.lhc_kind_off(n, j), 1),
                (self.lhc_pf_base(n) + pr * pb, pb),
            ]);
            self.values.remove(pr)
        };
        self.maybe_switch_repr(mode);
        v
    }

    /// Replaces the value of the postfix entry at `h`, returning the old
    /// value. The postfix itself is unchanged.
    pub fn replace_post_value(&mut self, h: u64, value: V) -> V {
        std::mem::replace(
            self.post_value_mut(h)
                .expect("replace_post_value: not a post"),
            value,
        )
    }

    /// Replaces the postfix entry at `h` with a sub-node, returning the
    /// displaced value. The caller re-inserts the displaced entry into
    /// the sub-node (the paper's "at most one entry is moved between the
    /// two nodes").
    pub fn swap_post_for_sub(&mut self, h: u64, sub: Node<V, K>, mode: ReprMode) -> V {
        let sub = Arc::new(sub);
        let pb = self.post_bits();
        let v = if self.hc {
            assert_eq!(
                self.hc_kind(h),
                KIND_POST,
                "swap_post_for_sub on non-post slot"
            );
            let (pr, sr) = self.hc_ranks(h);
            let off = self.hc_kind_off(h);
            self.bits.write_bits(off, KIND_SUB, 2);
            let pf = self.hc_pf_base() + h as usize * pb;
            let zero: [u64; K] = [0; K];
            self.write_postfix_at(pf, &zero);
            self.subs.insert(sr, sub);
            self.values.remove(pr)
        } else {
            let j = self.lhc_search(h).expect("swap_post_for_sub: empty slot");
            assert!(!self.lhc_is_sub(j), "swap_post_for_sub on sub slot");
            let n = self.n_children();
            let pr = self.lhc_post_rank(j);
            let sr = j - pr;
            let pf = self.lhc_pf_base(n) + pr * pb;
            self.bits.remove_range(pf, pb);
            self.bits.set(self.lhc_kind_off(n, j), true);
            self.subs.insert(sr, sub);
            self.values.remove(pr)
        };
        // The post count feeds the size comparison; keep the
        // representation a pure function of the node's final state.
        self.maybe_switch_repr(mode);
        v
    }

    /// Replaces the sub-node at `h` with a postfix entry (merge-up after
    /// a deletion left the sub-node with a single local entry).
    pub fn replace_sub_with_post(&mut self, h: u64, key: &[u64; K], value: V, mode: ReprMode) {
        let pb = self.post_bits();
        if self.hc {
            assert_eq!(
                self.hc_kind(h),
                KIND_SUB,
                "replace_sub_with_post on non-sub slot"
            );
            let (pr, sr) = self.hc_ranks(h);
            let off = self.hc_kind_off(h);
            self.bits.write_bits(off, KIND_POST, 2);
            let pf = self.hc_pf_base() + h as usize * pb;
            self.write_postfix_at(pf, key);
            self.subs.remove(sr);
            self.values.insert(pr, value);
        } else {
            let j = self
                .lhc_search(h)
                .expect("replace_sub_with_post: empty slot");
            assert!(self.lhc_is_sub(j), "replace_sub_with_post on post slot");
            let n = self.n_children();
            let pr = self.lhc_post_rank(j);
            let sr = j - pr;
            self.bits.set(self.lhc_kind_off(n, j), false);
            let pf = self.lhc_pf_base(n) + pr * pb;
            self.bits.insert_gap(pf, pb);
            self.write_postfix_at(pf, key);
            self.subs.remove(sr);
            self.values.insert(pr, value);
        }
        self.maybe_switch_repr(mode);
    }

    /// Replaces the sub-node at `h` with another sub-node, returning
    /// the displaced one still behind its `Arc` (the caller either
    /// re-attaches it elsewhere via [`Node::insert_sub`] or drops it;
    /// neither needs the deep copy an unwrap would cost).
    pub fn swap_sub(&mut self, h: u64, sub: impl Into<Arc<Node<V, K>>>) -> Arc<Node<V, K>> {
        let sr = self.sub_rank_of(h).expect("swap_sub: not a sub slot");
        std::mem::replace(&mut self.subs[sr], sub.into())
    }

    // ------------------------------------------------------------------
    // HC ⇄ LHC switching (Sect. 3.2)
    // ------------------------------------------------------------------

    /// Bit cost of the child table in LHC form (excl. infix, subs and
    /// values, which are identical in both forms).
    #[inline]
    fn lhc_cost_bits(&self, n: usize, posts: usize) -> usize {
        n * (K + 1) + posts * self.post_bits()
    }

    /// Bit cost of the child table in HC form, or `usize::MAX` when a
    /// `2^K` table may not be materialised.
    #[inline]
    fn hc_cost_bits(&self) -> usize {
        if K > MAX_HC_K {
            return usize::MAX;
        }
        (1usize << K) * (2 + self.post_bits())
    }

    /// Converts to the smaller representation if the current one is not.
    pub fn maybe_switch_repr(&mut self, mode: ReprMode) {
        let want_hc = match mode {
            ReprMode::ForceLhc => false,
            ReprMode::ForceHc => K <= MAX_HC_K,
            ReprMode::Adaptive => {
                self.hc_cost_bits() < self.lhc_cost_bits(self.n_children(), self.n_posts())
            }
        };
        if want_hc != self.hc {
            crate::telemetry::record_repr_switch(want_hc);
            if want_hc {
                self.convert_to_hc();
            } else {
                self.convert_to_lhc();
            }
        }
    }

    fn convert_to_hc(&mut self) {
        debug_assert!(!self.hc);
        let ib = self.infix_bits();
        let pb = self.post_bits();
        let n = self.n_children();
        let slots = 1usize << K;
        let mut bits = BitBuf::with_capacity(ib + slots * (2 + pb));
        bits.grow(ib + slots * (2 + pb));
        bits.copy_bits_from(&self.bits, 0, 0, ib);
        let pf_base_new = ib + 2 * slots;
        let mut pr = 0usize;
        for j in 0..n {
            let h = self.lhc_addr_at(j) as usize;
            if self.lhc_is_sub(j) {
                bits.write_bits(ib + 2 * h, KIND_SUB, 2);
            } else {
                bits.write_bits(ib + 2 * h, KIND_POST, 2);
                bits.copy_bits_from(
                    &self.bits,
                    self.lhc_pf_base(n) + pr * pb,
                    pf_base_new + h * pb,
                    pb,
                );
                pr += 1;
            }
        }
        self.bits = bits;
        self.hc = true;
    }

    fn convert_to_lhc(&mut self) {
        debug_assert!(self.hc);
        let ib = self.infix_bits();
        let pb = self.post_bits();
        let n = self.n_children();
        let posts = self.n_posts();
        let mut bits = BitBuf::with_capacity(ib + n * (K + 1) + posts * pb);
        bits.grow(ib + n * (K + 1) + posts * pb);
        bits.copy_bits_from(&self.bits, 0, 0, ib);
        let pf_base_new = ib + n * (K + 1);
        let mut j = 0usize;
        let mut pr = 0usize;
        for h in 0..(1u64 << K) {
            match self.hc_kind(h) {
                KIND_EMPTY => continue,
                KIND_POST => {
                    bits.write_bits(ib + j * K, h, K as u32);
                    // kind bit stays 0
                    bits.copy_bits_from(
                        &self.bits,
                        self.hc_pf_base() + h as usize * pb,
                        pf_base_new + pr * pb,
                        pb,
                    );
                    pr += 1;
                }
                _ => {
                    bits.write_bits(ib + j * K, h, K as u32);
                    bits.set(ib + n * K + j, true);
                }
            }
            j += 1;
        }
        debug_assert_eq!(j, n);
        self.bits = bits;
        self.hc = false;
    }

    // ------------------------------------------------------------------
    // Iteration support (used by queries, stats and merging)
    // ------------------------------------------------------------------

    /// Iterates all occupied slots in address order.
    pub fn iter_slots(&self) -> SlotIter<'_, V, K> {
        // The postfix base and stride are loop-invariant; computing them
        // here keeps the per-item cost to one address/kind read.
        let pf_base = if self.hc {
            self.hc_pf_base()
        } else {
            self.lhc_pf_base(self.n_children())
        };
        SlotIter {
            node: self,
            pf_base,
            pb: self.post_bits(),
            pos: 0,
            pr: 0,
            sr: 0,
        }
    }

    /// Releases surplus capacity in the bit string and both child
    /// vectors, so the space accounting sees zero slack afterwards.
    pub fn shrink_repr(&mut self) {
        self.bits.shrink_to_fit();
        self.subs.shrink_to_fit();
        self.values.shrink_to_fit();
    }

    // ------------------------------------------------------------------
    // Invariant checking (tests)
    // ------------------------------------------------------------------

    /// Validates all structural invariants of this subtree; panics on
    /// violation. Used by tests and debug assertions — decode paths use
    /// the fallible [`Node::validate_local`] instead.
    pub fn check_invariants(&self, is_root: bool) {
        if let Err(what) = self.validate_local() {
            panic!("node invariant violated: {what}");
        }
        if !is_root {
            assert!(self.n_children() >= 2, "non-root node with < 2 children");
        } else {
            assert_eq!(self.post_len as u32, W - 1, "root split bit");
            assert_eq!(self.infix_len, 0, "root infix");
        }
        for sub in self.subs.iter() {
            sub.check_invariants(false);
        }
    }
}

/// Mutating accessors that descend into `Arc`-shared children. These
/// need `V: Clone` because [`Arc::make_mut`] deep-copies a node that is
/// still referenced by another tree version (a snapshot); when the
/// child is uniquely owned — the steady state with no snapshots alive —
/// they mutate in place with only a refcount check.
impl<V: Clone, const K: usize> Node<V, K> {
    /// Mutable access to the sub-node at `h`, copy-on-write.
    pub fn sub_mut(&mut self, h: u64) -> Option<&mut Node<V, K>> {
        let sr = self.sub_rank_of(h)?;
        Some(Arc::make_mut(&mut self.subs[sr]))
    }

    /// Applies `f` to every sub-node child, copy-on-write.
    pub fn for_each_sub_mut(&mut self, f: &mut dyn FnMut(&mut Node<V, K>)) {
        for s in self.subs.iter_mut() {
            f(Arc::make_mut(s));
        }
    }

    /// If this node has exactly one child, removes and returns it with
    /// its address. A sub-node child still shared with a snapshot is
    /// cloned out (the snapshot keeps its version untouched).
    pub fn take_single_child(&mut self) -> Option<(u64, Child<V, K>)> {
        if self.n_children() != 1 {
            return None;
        }
        let (h, is_sub) = if self.hc {
            let mut found = None;
            for h in 0..(1u64 << K) {
                match self.hc_kind(h) {
                    KIND_EMPTY => {}
                    k => {
                        found = Some((h, k == KIND_SUB));
                        break;
                    }
                }
            }
            found.expect("one child")
        } else {
            (self.lhc_addr_at(0), self.lhc_is_sub(0))
        };
        // Reset the bit string to "empty node" form (infix only).
        self.bits.truncate(self.infix_bits());
        self.hc = false;
        let child = if is_sub {
            Child::Sub(Arc::unwrap_or_clone(self.subs.remove(0)))
        } else {
            Child::Post(self.values.remove(0))
        };
        Some((h, child))
    }
}

/// Iterator over occupied slots in address order, tracking dense ranks
/// incrementally so each step is O(1) (plus empty-slot skipping in HC
/// form).
pub(crate) struct SlotIter<'a, V, const K: usize> {
    node: &'a Node<V, K>,
    /// Bit offset of the postfix area (loop-invariant).
    pf_base: usize,
    /// Postfix stride in bits (loop-invariant).
    pb: usize,
    /// LHC: next child index. HC: next slot address.
    pos: usize,
    pr: usize,
    sr: usize,
}

impl<'a, V, const K: usize> Iterator for SlotIter<'a, V, K> {
    type Item = (u64, SlotRef<'a, V, K>);

    fn next(&mut self) -> Option<Self::Item> {
        let node = self.node;
        if node.hc {
            while self.pos < (1usize << K) {
                let h = self.pos as u64;
                self.pos += 1;
                match node.hc_kind(h) {
                    KIND_EMPTY => {}
                    KIND_POST => {
                        let r = SlotRef::Post {
                            pf_off: self.pf_base + h as usize * self.pb,
                            value: &node.values[self.pr],
                        };
                        self.pr += 1;
                        return Some((h, r));
                    }
                    _ => {
                        let r = SlotRef::Sub(&node.subs[self.sr]);
                        self.sr += 1;
                        return Some((h, r));
                    }
                }
            }
            None
        } else {
            if self.pos >= node.n_children() {
                return None;
            }
            let j = self.pos;
            self.pos += 1;
            let h = node.lhc_addr_at(j);
            if node.lhc_is_sub(j) {
                let r = SlotRef::Sub(&node.subs[self.sr]);
                self.sr += 1;
                Some((h, r))
            } else {
                let r = SlotRef::Post {
                    pf_off: self.pf_base + self.pr * self.pb,
                    value: &node.values[self.pr],
                };
                self.pr += 1;
                Some((h, r))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key2(a: u64, b: u64) -> [u64; 2] {
        [a, b]
    }

    /// Builds a node at split bit 3 with infix length 2 over the given
    /// prefix key.
    fn test_node() -> Node<u32, 2> {
        // post_len 3, infix_len 2: covers key bits 4..=5 as infix.
        Node::new(3, 2, &key2(0b11_0000, 0b01_0000))
    }

    #[test]
    fn infix_roundtrip_and_match() {
        let n = test_node();
        assert!(n.infix_matches(&key2(0b11_1010, 0b01_0101)));
        assert!(!n.infix_matches(&key2(0b10_1010, 0b01_0101)));
        let mut k = key2(0, 0);
        n.read_infix_into(&mut k);
        assert_eq!(k, key2(0b11_0000, 0b01_0000));
    }

    #[test]
    fn lhc_insert_lookup_remove_posts() {
        let mut n = test_node();
        let mode = ReprMode::ForceLhc;
        // Three postfix entries at addresses 0b01, 0b10, 0b11.
        for (h, lo) in [(0b01u64, 0b101u64), (0b10, 0b010), (0b11, 0b111)] {
            let mut k = key2(0b11_0000, 0b01_0000);
            phbits::hc::apply_addr(&mut k, h, 3);
            k[0] |= lo;
            k[1] |= lo ^ 0b111;
            n.insert_post(h, &k, h as u32, mode);
        }
        n.check_invariants(false);
        assert_eq!(n.n_children(), 3);
        assert_eq!(n.n_posts(), 3);
        assert!(!n.is_hc());
        assert!(matches!(n.probe(0b00), Probe::Empty));
        for h in [0b01u64, 0b10, 0b11] {
            match n.get_slot(h) {
                Some(SlotRef::Post { pf_off, value }) => {
                    assert_eq!(*value, h as u32);
                    // The postfix must reproduce the low bits we stored.
                    let mut k = key2(0, 0);
                    n.read_postfix_into(pf_off, &mut k);
                    let lo = match h {
                        0b01 => 0b101,
                        0b10 => 0b010,
                        _ => 0b111,
                    };
                    assert_eq!(k[0] & 0b111, lo);
                    assert_eq!(k[1] & 0b111, lo ^ 0b111);
                }
                _ => panic!("expected post at {h:#b}"),
            }
        }
        // Remove the middle entry; ranks must stay consistent.
        assert_eq!(n.remove_post(0b10, mode), 0b10);
        n.check_invariants(false);
        assert!(matches!(n.probe(0b10), Probe::Empty));
        assert!(matches!(n.probe(0b01), Probe::Post { .. }));
        assert!(matches!(n.probe(0b11), Probe::Post { .. }));
    }

    #[test]
    fn hc_conversion_preserves_slots() {
        let mut n: Node<u32, 2> = Node::new(1, 0, &[0, 0]);
        let mode = ReprMode::Adaptive;
        // post_len 1 → postfix 1 bit per dim; fill the whole 2-D cube so
        // the size comparison flips to HC.
        for h in 0..4u64 {
            let mut k = [0u64, 0];
            phbits::hc::apply_addr(&mut k, h, 1);
            k[0] |= h & 1;
            n.insert_post(h, &k, h as u32, mode);
        }
        assert!(n.is_hc(), "a full k=2 node must use the hypercube");
        n.check_invariants(false);
        for h in 0..4u64 {
            let Some(SlotRef::Post { pf_off, value }) = n.get_slot(h) else {
                panic!("missing slot {h}");
            };
            assert_eq!(*value, h as u32);
            let mut k = [0u64, 0];
            n.read_postfix_into(pf_off, &mut k);
            assert_eq!(k[0] & 1, h & 1);
        }
        // Removing two entries flips it back to LHC.
        n.remove_post(0, mode);
        n.remove_post(3, mode);
        assert!(!n.is_hc());
        n.check_invariants(false);
        assert_eq!(n.n_children(), 2);
    }

    #[test]
    fn forced_hc_from_the_start() {
        let mut n: Node<(), 3> = Node::new(5, 0, &[0; 3]);
        let mode = ReprMode::ForceHc;
        n.maybe_switch_repr(mode);
        assert!(n.is_hc());
        n.insert_post(0b101, &[0b01_0101, 0b00_0000, 0b01_1111], (), mode);
        n.insert_post(0b010, &[0b00_0101, 0b01_0000, 0b00_1111], (), mode);
        assert!(n.is_hc());
        n.check_invariants(false);
        assert!(matches!(n.probe(0b101), Probe::Post { .. }));
        assert!(matches!(n.probe(0b000), Probe::Empty));
        assert_eq!(n.remove_post(0b101, mode), ());
        assert!(n.is_hc(), "forced mode must not fall back");
    }

    #[test]
    fn sub_insert_swap_and_ranks() {
        let mut n = test_node();
        let mode = ReprMode::ForceLhc;
        let prefix = key2(0b11_0000, 0b01_0000);
        n.insert_post(0b00, &prefix, 7, mode);
        let child = Node::new(1, 1, &prefix);
        n.insert_sub(0b10, child, mode);
        let mut k2 = prefix;
        k2[0] |= 0b111;
        n.insert_post(0b11, &k2, 9, mode);
        assert_eq!(n.n_children(), 3);
        assert_eq!(n.n_posts(), 2);
        assert_eq!(n.n_subs(), 1);
        assert!(matches!(n.probe(0b10), Probe::Sub));
        assert!(n.sub_mut(0b10).is_some());
        assert!(n.sub_mut(0b11).is_none());
        // Swap the sub for another; the old one comes back out.
        let other = Node::new(0, 2, &prefix);
        let old = n.swap_sub(0b10, other);
        assert_eq!(old.post_len, 1);
        // Replace the sub with a post (merge-up path).
        n.replace_sub_with_post(0b10, &prefix, 42, mode);
        assert_eq!(n.n_subs(), 0);
        assert_eq!(n.n_posts(), 3);
        assert_eq!(n.replace_post_value(0b10, 43), 42);
    }

    #[test]
    fn take_single_child_post_and_sub() {
        let mode = ReprMode::ForceLhc;
        let prefix = key2(0, 0);
        let mut n: Node<u32, 2> = Node::new(2, 0, &prefix);
        n.insert_post(0b01, &key2(0b100, 0b011), 5, mode);
        let (h, c) = n.take_single_child().unwrap();
        assert_eq!(h, 0b01);
        assert!(matches!(c, Child::Post(5)));
        assert_eq!(n.n_children(), 0);

        let mut n: Node<u32, 2> = Node::new(2, 0, &prefix);
        n.insert_sub(0b11, Node::new(0, 1, &prefix), mode);
        let (h, c) = n.take_single_child().unwrap();
        assert_eq!(h, 0b11);
        assert!(matches!(c, Child::Sub(_)));

        let mut n: Node<u32, 2> = Node::new(2, 0, &prefix);
        n.insert_post(0b00, &prefix, 1, mode);
        n.insert_post(0b01, &key2(0b100, 0b000), 2, mode);
        assert!(n.take_single_child().is_none(), "two children");
    }

    #[test]
    fn reset_infix_shrink_and_grow() {
        let mut n = test_node();
        let mode = ReprMode::ForceLhc;
        let prefix = key2(0b11_0000, 0b01_0000);
        n.insert_post(0b01, &key2(0b11_0101, 0b01_0010), 1, mode);
        // Shrink the infix to 1 bit per dim.
        n.reset_infix(1, &prefix, mode);
        assert_eq!(n.infix_len, 1);
        assert!(n.infix_matches(&key2(0b01_0000, 0b01_0000)));
        // The postfix survived the relayout.
        let Some(SlotRef::Post { pf_off, .. }) = n.get_slot(0b01) else {
            panic!()
        };
        let mut k = key2(0, 0);
        n.read_postfix_into(pf_off, &mut k);
        assert_eq!(k, key2(0b101, 0b010));
        // Grow it back to 2 bits per dim.
        n.reset_infix(2, &prefix, mode);
        assert!(n.infix_matches(&key2(0b11_0000, 0b01_0000)));
        let Some(SlotRef::Post { pf_off, .. }) = n.get_slot(0b01) else {
            panic!()
        };
        let mut k = key2(0, 0);
        n.read_postfix_into(pf_off, &mut k);
        assert_eq!(k, key2(0b101, 0b010));
    }

    #[test]
    fn slot_iter_visits_in_addr_order_with_correct_ranks() {
        let mut n = test_node();
        let mode = ReprMode::ForceLhc;
        let prefix = key2(0b11_0000, 0b01_0000);
        n.insert_post(0b11, &key2(0b11_0001, 0b01_0001), 11, mode);
        n.insert_sub(0b01, Node::new(1, 1, &prefix), mode);
        n.insert_post(0b00, &prefix, 10, mode);
        let kinds: Vec<(u64, bool)> = n
            .iter_slots()
            .map(|(h, s)| (h, matches!(s, SlotRef::Sub(_))))
            .collect();
        assert_eq!(kinds, vec![(0b00, false), (0b01, true), (0b11, false)]);
        // Values map to the right posts.
        let vals: Vec<u32> = n
            .iter_slots()
            .filter_map(|(_, s)| match s {
                SlotRef::Post { value, .. } => Some(*value),
                _ => None,
            })
            .collect();
        assert_eq!(vals, vec![10, 11]);
    }

    #[test]
    fn zero_post_len_entries() {
        // post_len 0: entries are fully determined by their address.
        let mut n: Node<u8, 3> = Node::new(0, 0, &[0; 3]);
        let mode = ReprMode::Adaptive;
        for h in [0u64, 3, 5, 7] {
            let mut k = [0u64; 3];
            phbits::hc::apply_addr(&mut k, h, 0);
            n.insert_post(h, &k, h as u8, mode);
        }
        n.check_invariants(false);
        for h in [0u64, 3, 5, 7] {
            let Some(SlotRef::Post { pf_off, value }) = n.get_slot(h) else {
                panic!("missing {h}");
            };
            assert_eq!(*value, h as u8);
            assert!(
                n.postfix_matches(pf_off, &[0; 3]),
                "empty postfix matches all"
            );
        }
        assert_eq!(n.remove_post(5, mode), 5);
        assert!(matches!(n.probe(5), Probe::Empty));
    }
}
