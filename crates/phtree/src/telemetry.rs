//! Optional runtime telemetry hooks (cargo feature `metrics`).
//!
//! The tree's hot paths (`get`, `insert`, `remove`, window queries)
//! can report **per-operation probe telemetry** — which operation ran
//! and how many nodes it visited — plus HC↔LHC representation
//! switches, to a process-global [`TreeSink`] installed once via
//! [`set_sink`] (the `log`-crate pattern: the tree stays a plain value
//! type with no metrics field, so serialisation, `Clone` and the raw
//! codec are untouched).
//!
//! ## Overhead contract
//!
//! * Feature **off** (the default): every hook in this module is a
//!   zero-sized no-op — [`Visits`] is a ZST and the record functions
//!   have empty bodies, so the optimiser erases the instrumentation
//!   entirely. The perf-regression harness (`scripts/bench_baseline.sh`
//!   + CI perf-smoke) gates this path against the committed baseline.
//! * Feature **on**, no sink installed: one `OnceLock` load (a single
//!   acquire atomic read) and a predictable branch per operation, plus
//!   one register increment per node visited.
//! * Feature on, sink installed: the above plus one virtual call per
//!   operation — the sink itself decides what recording costs (the
//!   intended sink is a `phmetrics` counter/histogram: one relaxed
//!   atomic add).
//!
//! Only the const-generic [`crate::PhTree`] is instrumented; the
//! dynamic-dimension mirror (`PhTreeDyn`) and the full-scan iterator
//! are not on any serving path and report nothing.
//!
//! This seam doubles as the request-tracing bridge: `phserve`'s
//! `trace` feature installs a forwarding sink that adds each op's
//! `nodes_visited` to the calling thread's open `phtrace` descent
//! span, so slow-query breakdowns carry tree work without the tree
//! knowing about tracing (DESIGN.md §18).

/// Which tree operation a telemetry record describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TreeOp {
    /// Point query ([`crate::PhTree::get`] / `contains`).
    Get,
    /// Insert or overwrite ([`crate::PhTree::insert`]).
    Insert,
    /// Remove ([`crate::PhTree::remove`]).
    Remove,
    /// Window query iterator lifetime ([`crate::PhTree::query`] /
    /// `query_approx`); nodes are counted across the whole iteration
    /// and reported when the iterator is dropped.
    Query,
}

impl TreeOp {
    /// Stable lower-case name, usable as a metrics label.
    pub fn name(self) -> &'static str {
        match self {
            TreeOp::Get => "get",
            TreeOp::Insert => "insert",
            TreeOp::Remove => "remove",
            TreeOp::Query => "query",
        }
    }
}

/// Receiver for tree telemetry. Implementations must be cheap: these
/// methods run inside `get`/`insert`/`remove`/query iteration.
#[cfg(feature = "metrics")]
pub trait TreeSink: Sync {
    /// One operation completed, having visited `nodes_visited` nodes
    /// (for [`TreeOp::Query`]: across the whole iteration).
    fn op(&self, op: TreeOp, nodes_visited: u32);

    /// A node switched representation (`to_hc`: LHC→HC, else HC→LHC).
    fn repr_switch(&self, to_hc: bool) {
        let _ = to_hc;
    }
}

#[cfg(feature = "metrics")]
static SINK: std::sync::OnceLock<&'static dyn TreeSink> = std::sync::OnceLock::new();

/// Installs the process-global telemetry sink. Returns `false` if a
/// sink was already installed (the first one wins, like `log`).
#[cfg(feature = "metrics")]
pub fn set_sink(sink: &'static dyn TreeSink) -> bool {
    SINK.set(sink).is_ok()
}

/// Whether a sink is installed.
#[cfg(feature = "metrics")]
pub fn sink_installed() -> bool {
    SINK.get().is_some()
}

#[cfg(feature = "metrics")]
#[inline]
fn sink() -> Option<&'static dyn TreeSink> {
    SINK.get().copied()
}

/// Per-operation node-visit counter threaded through the hot paths.
///
/// With the `metrics` feature off this is a ZST with empty methods, so
/// passing it around costs nothing; with the feature on it is a plain
/// `u32` register.
#[derive(Clone, Copy)]
pub(crate) struct Visits {
    #[cfg(feature = "metrics")]
    n: u32,
}

impl Visits {
    #[inline]
    pub(crate) const fn new() -> Self {
        Visits {
            #[cfg(feature = "metrics")]
            n: 0,
        }
    }

    /// Counts one node visited.
    #[inline]
    pub(crate) fn bump(&mut self) {
        #[cfg(feature = "metrics")]
        {
            self.n += 1;
        }
    }
}

/// Reports a completed operation to the installed sink, if any.
#[inline]
pub(crate) fn record_op(op: TreeOp, visits: Visits) {
    #[cfg(feature = "metrics")]
    if let Some(s) = sink() {
        s.op(op, visits.n);
    }
    #[cfg(not(feature = "metrics"))]
    let _ = (op, visits);
}

/// Reports an HC↔LHC representation switch to the installed sink.
#[inline]
pub(crate) fn record_repr_switch(to_hc: bool) {
    #[cfg(feature = "metrics")]
    if let Some(s) = sink() {
        s.repr_switch(to_hc);
    }
    #[cfg(not(feature = "metrics"))]
    let _ = to_hc;
}
