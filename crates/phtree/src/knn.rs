//! k-nearest-neighbour search.
//!
//! The paper lists nearest-neighbour queries as a desirable extension
//! ("an early prototype implementation indicates that such searches can
//! be efficiently performed", Sect. 5). This module implements them with
//! a classic best-first traversal: a priority queue ordered by minimum
//! possible distance holds both unexpanded nodes (keyed by the distance
//! from the query point to the node's region) and concrete entries; when
//! an entry reaches the front of the queue it is provably the next
//! nearest result.

use crate::key::key_to_f64;
use crate::node::{Node, SlotRef};
use crate::tree::PhTree;
use phbits::{hc, num};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A distance metric over PH-tree keys.
///
/// Implementations define a per-dimension distance; point and
/// point-to-box distances derive from it. Distances must be
/// non-negative and the per-dimension distance monotone in `|a − b|`
/// along each axis for the search to be exact.
pub trait Distance<const K: usize> {
    /// Distance contribution of dimension `d` between coordinates `a`
    /// and `b` (stored key space). Returns the *squared* term.
    fn dim_dist2(&self, d: usize, a: u64, b: u64) -> f64;

    /// Euclidean-style distance between two points.
    fn point(&self, a: &[u64; K], b: &[u64; K]) -> f64 {
        (0..K)
            .map(|d| self.dim_dist2(d, a[d], b[d]))
            .sum::<f64>()
            .sqrt()
    }

    /// Minimum distance from `p` to the axis-aligned box `[lo, hi]`.
    fn to_box(&self, p: &[u64; K], lo: &[u64; K], hi: &[u64; K]) -> f64 {
        (0..K)
            .map(|d| {
                let c = p[d].clamp(lo[d], hi[d]);
                self.dim_dist2(d, p[d], c)
            })
            .sum::<f64>()
            .sqrt()
    }
}

/// Euclidean distance treating keys as unsigned integers.
#[derive(Clone, Copy, Debug, Default)]
pub struct IntEuclidean;

impl<const K: usize> Distance<K> for IntEuclidean {
    #[inline]
    fn dim_dist2(&self, _d: usize, a: u64, b: u64) -> f64 {
        let diff = a.abs_diff(b) as f64;
        diff * diff
    }
}

/// Euclidean distance for keys produced by [`crate::key::f64_to_key`]:
/// coordinates are decoded back to `f64` before measuring. Exact because
/// the per-dimension encoding is monotone.
#[derive(Clone, Copy, Debug, Default)]
pub struct F64Euclidean;

impl<const K: usize> Distance<K> for F64Euclidean {
    #[inline]
    fn dim_dist2(&self, _d: usize, a: u64, b: u64) -> f64 {
        let diff = key_to_f64(a) - key_to_f64(b);
        diff * diff
    }
}

/// One k-nearest-neighbour result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor<'t, V, const K: usize> {
    /// The stored key.
    pub key: [u64; K],
    /// The stored value.
    pub value: &'t V,
    /// Distance from the query point under the metric used.
    pub dist: f64,
}

/// An f64 wrapper giving total order for the priority queue.
#[derive(PartialEq)]
struct D(f64);
impl Eq for D {}
impl PartialOrd for D {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for D {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

enum Item<'t, V, const K: usize> {
    Node(&'t Node<V, K>, [u64; K]),
    Entry([u64; K], &'t V),
}

// Items hold only references and fixed-size arrays; copying them lets the
// search pop by value while the arena vector stays borrow-free.
impl<'t, V, const K: usize> Clone for Item<'t, V, K> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'t, V, const K: usize> Copy for Item<'t, V, K> {}

impl<V, const K: usize> PhTree<V, K> {
    /// Returns the `n` entries nearest to `center` under integer
    /// Euclidean distance, nearest first.
    ///
    /// ```
    /// let mut t: phtree::PhTree<&str, 2> = phtree::PhTree::new();
    /// t.insert([0, 0], "origin");
    /// t.insert([10, 10], "far");
    /// t.insert([3, 4], "near");
    /// let nn = t.knn(&[1, 1], 2);
    /// assert_eq!(*nn[0].value, "origin");
    /// assert_eq!(*nn[1].value, "near");
    /// assert!((nn[1].dist - (13.0f64).sqrt()).abs() < 1e-9);
    /// ```
    pub fn knn(&self, center: &[u64; K], n: usize) -> Vec<Neighbor<'_, V, K>> {
        self.knn_with(center, n, &IntEuclidean)
    }

    /// Like [`PhTree::knn`], but only returns neighbours with distance
    /// `<= max_dist` (a range-limited nearest-neighbour search).
    ///
    /// ```
    /// let mut t: phtree::PhTree<(), 1> = phtree::PhTree::new();
    /// for x in [0u64, 5, 100] {
    ///     t.insert([x], ());
    /// }
    /// let close = t.knn_within(&[1], 10, 6.0);
    /// assert_eq!(close.len(), 2); // 0 and 5, but not 100
    /// ```
    pub fn knn_within(
        &self,
        center: &[u64; K],
        n: usize,
        max_dist: f64,
    ) -> Vec<Neighbor<'_, V, K>> {
        let mut out = self.knn_with(center, n, &IntEuclidean);
        // Best-first yields sorted distances; cut at the bound.
        let keep = out.partition_point(|nb| nb.dist <= max_dist);
        out.truncate(keep);
        out
    }

    /// Like [`PhTree::knn`] with a caller-supplied [`Distance`] metric.
    pub fn knn_with<D2: Distance<K>>(
        &self,
        center: &[u64; K],
        n: usize,
        metric: &D2,
    ) -> Vec<Neighbor<'_, V, K>> {
        let mut out = Vec::with_capacity(n.min(self.len()));
        if n == 0 {
            return out;
        }
        let Some(root) = self.root.as_deref() else {
            return out;
        };
        fn push<'t, V, const K: usize>(
            heap: &mut BinaryHeap<(Reverse<D>, usize)>,
            items: &mut Vec<Item<'t, V, K>>,
            dist: f64,
            item: Item<'t, V, K>,
        ) {
            items.push(item);
            heap.push((Reverse(D(dist)), items.len() - 1));
        }
        let mut heap: BinaryHeap<(Reverse<D>, usize)> = BinaryHeap::new();
        let mut items: Vec<Item<'_, V, K>> = Vec::new();
        push(&mut heap, &mut items, 0.0, Item::Node(root, [0u64; K]));
        while let Some((Reverse(D(dist)), idx)) = heap.pop() {
            match items[idx] {
                Item::Entry(key, value) => {
                    out.push(Neighbor { key, value, dist });
                    if out.len() == n {
                        break;
                    }
                }
                Item::Node(node, prefix) => {
                    for (h, slot) in node.iter_slots() {
                        let mut p = prefix;
                        hc::apply_addr(&mut p, h, node.post_len as u32);
                        match slot {
                            SlotRef::Post { pf_off, value } => {
                                let mut key = p;
                                node.read_postfix_into(pf_off, &mut key);
                                let d = metric.point(center, &key);
                                push(&mut heap, &mut items, d, Item::Entry(key, value));
                            }
                            SlotRef::Sub(sub) => {
                                sub.read_infix_into(&mut p);
                                let span = num::low_mask(sub.post_len as u32 + 1);
                                let mut lo = p;
                                let mut hi = p;
                                for d in 0..K {
                                    lo[d] &= !span;
                                    hi[d] |= span;
                                }
                                let d = metric.to_box(center, &lo, &hi);
                                push(&mut heap, &mut items, d, Item::Node(sub, lo));
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_knn<const K: usize>(pts: &[[u64; K]], center: &[u64; K], n: usize) -> Vec<f64> {
        let m = IntEuclidean;
        let mut d: Vec<f64> = pts
            .iter()
            .map(|p| Distance::<K>::point(&m, center, p))
            .collect();
        d.sort_by(f64::total_cmp);
        d.truncate(n);
        d
    }

    #[test]
    fn knn_on_empty_tree() {
        let t: PhTree<(), 2> = PhTree::new();
        assert!(t.knn(&[0, 0], 3).is_empty());
    }

    #[test]
    fn knn_zero_neighbors() {
        let mut t: PhTree<(), 2> = PhTree::new();
        t.insert([1, 1], ());
        assert!(t.knn(&[0, 0], 0).is_empty());
    }

    #[test]
    fn knn_matches_brute_force() {
        let mut t: PhTree<usize, 3> = PhTree::new();
        let mut pts = Vec::new();
        let mut x = 0x12345u64;
        for i in 0..400 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let p = [x % 1000, (x >> 20) % 1000, (x >> 40) % 1000];
            if t.insert(p, i).is_none() {
                pts.push(p);
            }
        }
        for center in [[0u64, 0, 0], [500, 500, 500], [999, 0, 999]] {
            for n in [1, 5, 17] {
                let got: Vec<f64> = t.knn(&center, n).iter().map(|nb| nb.dist).collect();
                let want = brute_knn(&pts, &center, n);
                assert_eq!(got.len(), want.len());
                for (g, w) in got.iter().zip(&want) {
                    assert!((g - w).abs() < 1e-9, "center {center:?} n {n}: {g} vs {w}");
                }
                // Results must be sorted by distance.
                assert!(got.windows(2).all(|w| w[0] <= w[1]));
            }
        }
    }

    #[test]
    fn knn_more_than_len_returns_all() {
        let mut t: PhTree<(), 2> = PhTree::new();
        for i in 0..5u64 {
            t.insert([i, i], ());
        }
        assert_eq!(t.knn(&[2, 2], 100).len(), 5);
    }

    #[test]
    fn knn_exact_hit_is_first() {
        let mut t: PhTree<u8, 2> = PhTree::new();
        t.insert([7, 7], 1);
        t.insert([8, 8], 2);
        let nn = t.knn(&[7, 7], 1);
        assert_eq!(nn[0].key, [7, 7]);
        assert_eq!(nn[0].dist, 0.0);
    }
}
