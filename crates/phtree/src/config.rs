//! Tree configuration.

/// Node representation policy.
///
/// The paper's PH-tree switches each node between a full hypercube array
/// ("HC", O(1) lookup, `O(2^k)` space) and a sorted linear table ("LHC",
/// `O(log n)` lookup, `O(n·k)` space) by comparing the exact size of both
/// (Sect. 3.2). The forced modes exist for the ablation benchmarks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReprMode {
    /// Per-node size comparison; the paper's behaviour. Default.
    #[default]
    Adaptive,
    /// Every node stays in linear (LHC) form.
    ForceLhc,
    /// Every node uses the full hypercube where `K` permits it
    /// (`K ≤ 22`); larger `K` falls back to LHC.
    ForceHc,
}
