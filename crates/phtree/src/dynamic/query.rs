//! Window queries for the dynamic tree (visitor style).

use super::node::{DynNode, SlotRef};
use super::tree::{KeyBuf, PhTreeDyn};
use phbits::{hc, num};

/// Runs the Sect. 3.5 window-query algorithm over the dynamic tree,
/// calling `visit` for every match; returns the match count.
pub(crate) fn query_visit<V>(
    tree: &PhTreeDyn<V>,
    min: &[u64],
    max: &[u64],
    visit: &mut dyn FnMut(&[u64], &V),
) -> usize {
    let k = tree.k;
    let Some(root) = tree.root.as_deref() else {
        return 0;
    };
    let mut count = 0;
    let prefix: KeyBuf = [0; 64];
    walk(k, root, &prefix, min, max, false, visit, &mut count);
    count
}

/// Clears bits `0..=bit` of every dimension.
#[inline]
fn clear_low(key: &mut [u64], bit: u32) {
    let m = !num::low_mask(bit + 1);
    for v in key.iter_mut() {
        *v &= m;
    }
}

#[allow(clippy::too_many_arguments)]
fn walk<V>(
    k: usize,
    node: &DynNode<V>,
    prefix: &KeyBuf,
    min: &[u64],
    max: &[u64],
    mut inside: bool,
    visit: &mut dyn FnMut(&[u64], &V),
    count: &mut usize,
) {
    let span = num::low_mask(node.post_len as u32 + 1);
    let (m_l, m_u);
    if inside {
        m_l = 0;
        m_u = num::low_mask(k as u32);
    } else {
        let mut all_inside = true;
        for d in 0..k {
            if prefix[d] > max[d] || prefix[d] | span < min[d] {
                return;
            }
            all_inside &= min[d] <= prefix[d] && prefix[d] | span <= max[d];
        }
        inside = all_inside;
        if inside {
            m_l = 0;
            m_u = num::low_mask(k as u32);
        } else {
            let (l, u) = hc::masks(&prefix[..k], min, max, node.post_len as u32);
            if l & !u != 0 {
                return;
            }
            m_l = l;
            m_u = u;
        }
    }
    let mut handle = |h: u64, slot: SlotRef<'_, V>| match slot {
        SlotRef::Post { pf_off, value } => {
            let mut key = *prefix;
            hc::apply_addr(&mut key[..k], h, node.post_len as u32);
            node.read_postfix_into(k, pf_off, &mut key[..k]);
            if inside || (0..k).all(|d| min[d] <= key[d] && key[d] <= max[d]) {
                *count += 1;
                visit(&key[..k], value);
            }
        }
        SlotRef::Sub(sub) => {
            let mut child_prefix = *prefix;
            hc::apply_addr(&mut child_prefix[..k], h, node.post_len as u32);
            sub.read_infix_into(k, &mut child_prefix[..k]);
            clear_low(&mut child_prefix[..k], sub.post_len as u32);
            walk(k, sub, &child_prefix, min, max, inside, visit, count);
        }
    };
    if node.is_hc() {
        let mut next = Some(hc::first_addr(m_l, m_u));
        while let Some(h) = next {
            next = hc::next_addr(h, m_l, m_u);
            if let Some(slot) = node.get_slot(k, h) {
                handle(h, slot);
            }
        }
    } else {
        let mut j = node.lhc_lower_bound(k, m_l);
        // Track the dense post rank incrementally across the scan.
        let (mut pr, pf_base) = node.lhc_scan_state(k, j);
        while j < node.lhc_len() {
            let (h, slot) = node.lhc_at_ranked(k, j, pr, pf_base);
            j += 1;
            if matches!(slot, SlotRef::Post { .. }) {
                pr += 1;
            }
            if h > m_u {
                break;
            }
            if hc::addr_valid(h, m_l, m_u) {
                handle(h, slot);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::tree::PhTreeDyn;

    #[test]
    fn empty_window_on_empty_tree() {
        let t: PhTreeDyn<u8> = PhTreeDyn::new(2);
        assert_eq!(t.query_count(&[0, 0], &[u64::MAX, u64::MAX]), 0);
    }

    #[test]
    fn full_window_returns_everything() {
        let mut t: PhTreeDyn<u8> = PhTreeDyn::new(3);
        for i in 0..500u64 {
            t.insert(&[i, i * i % 97, i % 7], 0);
        }
        assert_eq!(
            t.query_count(&[0, 0, 0], &[u64::MAX, u64::MAX, u64::MAX]),
            t.len()
        );
    }

    #[test]
    fn collect_returns_correct_pairs() {
        let mut t: PhTreeDyn<u32> = PhTreeDyn::new(2);
        t.insert(&[1, 1], 11);
        t.insert(&[2, 2], 22);
        t.insert(&[8, 8], 88);
        let mut got = t.query_collect(&[0, 0], &[4, 4]);
        got.sort();
        assert_eq!(got, vec![(vec![1, 1], 11), (vec![2, 2], 22)]);
    }
}
