//! The runtime-dimensionality PH-tree map.

use super::node::{DynBulkChild, DynChild, DynNode, Probe, SlotRef, W};
use crate::config::ReprMode;
use crate::stats::{TreeStats, ALLOC_OVERHEAD};
use phbits::{hc, num};

/// Z-order (Morton-order) comparison of two equal-length keys: the
/// ordering induced by a depth-first traversal of the tree.
fn z_cmp_dyn(a: &[u64], b: &[u64]) -> std::cmp::Ordering {
    match num::max_diverging_bit(a, b) {
        None => std::cmp::Ordering::Equal,
        Some(d) => hc::addr(a, d).cmp(&hc::addr(b, d)),
    }
}

/// Scratch key buffer: `k ≤ 64`, so a fixed stack array suffices for
/// all internal key reconstruction.
pub(crate) type KeyBuf = [u64; 64];

/// A PH-tree whose dimension count is chosen at runtime.
///
/// Functionally equivalent to [`crate::PhTree`] — it builds *identical*
/// trees for identical data (the structure is canonical) — but takes
/// keys as slices, which suits applications where `k` is not known at
/// compile time (e.g. indexing all columns of a relational table, the
/// paper's Sect. 5 outlook). The const-generic tree is faster; this one
/// is more flexible.
///
/// # Example
///
/// ```
/// use phtree::PhTreeDyn;
///
/// let mut t: PhTreeDyn<u32> = PhTreeDyn::new(4); // k chosen at runtime
/// t.insert(&[1, 2, 3, 4], 10);
/// t.insert(&[1, 2, 3, 5], 11);
/// assert_eq!(t.get(&[1, 2, 3, 5]), Some(&11));
/// let hits = t.query_count(&[0, 0, 0, 0], &[9, 9, 9, 4]);
/// assert_eq!(hits, 1);
/// assert_eq!(t.remove(&[1, 2, 3, 4]), Some(10));
/// ```
pub struct PhTreeDyn<V> {
    pub(crate) root: Option<Box<DynNode<V>>>,
    pub(crate) k: usize,
    len: usize,
    mode: ReprMode,
}

impl<V> PhTreeDyn<V> {
    /// Creates an empty tree over `k`-dimensional keys (`1 ≤ k ≤ 64`).
    pub fn new(k: usize) -> Self {
        Self::with_mode(k, ReprMode::Adaptive)
    }

    /// Creates an empty tree with an explicit node representation
    /// policy.
    pub fn with_mode(k: usize, mode: ReprMode) -> Self {
        assert!((1..=64).contains(&k), "PH-tree supports 1..=64 dimensions");
        PhTreeDyn {
            root: None,
            k,
            len: 0,
            mode,
        }
    }

    /// Builds a tree from a batch of entries in one bottom-up pass
    /// (runtime-`k` analog of [`crate::PhTree::bulk_load`]).
    ///
    /// O(n log n) for the Z-order sort plus O(n) construction; every
    /// node is allocated once at its exact final size. Duplicate keys
    /// keep the last value. The result is structurally identical to
    /// inserting the same entries one by one.
    ///
    /// # Panics
    ///
    /// Panics if `k` is outside `1..=64` or any key has length ≠ `k`.
    pub fn bulk_load(k: usize, items: Vec<(Vec<u64>, V)>) -> Self {
        Self::bulk_load_with_mode(k, items, ReprMode::Adaptive)
    }

    /// [`PhTreeDyn::bulk_load`] with an explicit node representation
    /// policy.
    pub fn bulk_load_with_mode(k: usize, mut items: Vec<(Vec<u64>, V)>, mode: ReprMode) -> Self {
        assert!((1..=64).contains(&k), "PH-tree supports 1..=64 dimensions");
        for (key, _) in &items {
            assert_eq!(key.len(), k, "key dimension mismatch");
        }
        // Z-order sort = depth-first tree order; a stable sort plus
        // keep-last dedup gives last-write-wins for duplicate keys.
        items.sort_by(|a, b| z_cmp_dyn(&a.0, &b.0));
        items.dedup_by(|later, kept| {
            if later.0 == kept.0 {
                std::mem::swap(&mut later.1, &mut kept.1);
                true
            } else {
                false
            }
        });
        let len = items.len();
        if len == 0 {
            return Self::with_mode(k, mode);
        }
        let mut keys = Vec::with_capacity(len);
        let mut values = Vec::with_capacity(len);
        for (key, v) in items {
            keys.push(key);
            values.push(v);
        }
        let mut vals = values.into_iter();
        let root = Self::build_range(k, &keys, 0, len, (W - 1) as u8, 0, &mut vals, mode);
        debug_assert!(vals.next().is_none(), "value stream fully consumed");
        PhTreeDyn {
            root: Some(Box::new(root)),
            k,
            len,
            mode,
        }
    }

    /// Builds the node covering the Z-sorted, deduplicated key range
    /// `keys[lo..hi]` bottom-up. All keys in the range agree on every
    /// bit above `post_len`; groups sharing a hypercube address recurse
    /// on their own maximal diverging bit.
    #[allow(clippy::too_many_arguments)]
    fn build_range(
        k: usize,
        keys: &[Vec<u64>],
        lo: usize,
        hi: usize,
        post_len: u8,
        infix_len: u8,
        vals: &mut std::vec::IntoIter<V>,
        mode: ReprMode,
    ) -> DynNode<V> {
        let mut children: Vec<(u64, DynBulkChild<V>)> = Vec::new();
        let mut i = lo;
        while i < hi {
            let h = hc::addr(&keys[i], post_len as u32);
            let mut j = i + 1;
            while j < hi && hc::addr(&keys[j], post_len as u32) == h {
                j += 1;
            }
            if j - i == 1 {
                let value = vals.next().expect("one value per key");
                children.push((
                    h,
                    DynBulkChild::Post {
                        key: keys[i].clone(),
                        value,
                    },
                ));
            } else {
                let d = num::max_diverging_bit(&keys[i], &keys[j - 1])
                    .expect("distinct keys in a group must diverge");
                debug_assert!((d as u8) < post_len);
                let sub =
                    Self::build_range(k, keys, i, j, d as u8, post_len - 1 - d as u8, vals, mode);
                children.push((h, DynBulkChild::Sub(sub)));
            }
            i = j;
        }
        DynNode::from_children(k, post_len, infix_len, &keys[lo], children, mode)
    }

    /// Releases surplus capacity throughout the tree (bit strings and
    /// child vectors retain slack from amortised growth).
    pub fn shrink_to_fit(&mut self) {
        fn walk<V>(n: &mut DynNode<V>) {
            n.shrink_repr();
            for sub in n.subs.iter_mut() {
                walk(sub);
            }
        }
        if let Some(r) = self.root.as_deref_mut() {
            walk(r);
        }
    }

    /// The dimension count.
    #[inline]
    pub fn dims(&self) -> usize {
        self.k
    }

    /// Number of entries stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.root = None;
        self.len = 0;
    }

    #[inline]
    fn check_key(&self, key: &[u64]) {
        assert_eq!(key.len(), self.k, "key dimension mismatch");
    }

    /// Inserts `key → value`, returning the previous value if present.
    pub fn insert(&mut self, key: &[u64], value: V) -> Option<V> {
        self.check_key(key);
        let (k, mode) = (self.k, self.mode);
        match &mut self.root {
            None => {
                let mut root = Box::new(DynNode::new(k, (W - 1) as u8, 0, key));
                root.insert_post(k, hc::addr(key, W - 1), key, value, mode);
                self.root = Some(root);
                self.len = 1;
                None
            }
            Some(root) => {
                let old = Self::insert_rec(k, root, key, value, mode);
                if old.is_none() {
                    self.len += 1;
                }
                old
            }
        }
    }

    fn insert_rec(
        k: usize,
        node: &mut DynNode<V>,
        key: &[u64],
        value: V,
        mode: ReprMode,
    ) -> Option<V> {
        let h = hc::addr(key, node.post_len as u32);
        match node.probe(k, h) {
            Probe::Empty => {
                node.insert_post(k, h, key, value, mode);
                None
            }
            Probe::Post { pf_off } => {
                if node.postfix_matches(k, pf_off, key) {
                    return Some(node.replace_post_value(k, h, value));
                }
                let mut old_key: KeyBuf = [0; 64];
                old_key[..k].copy_from_slice(key);
                node.read_postfix_into(k, pf_off, &mut old_key[..k]);
                let dmax =
                    num::max_diverging_bit(key, &old_key[..k]).expect("distinct keys must diverge");
                debug_assert!((dmax as u8) < node.post_len);
                let sub = DynNode::new(k, dmax as u8, node.post_len - 1 - dmax as u8, key);
                let old_val = node.swap_post_for_sub(k, h, sub, mode);
                let sub = node.sub_mut(k, h).expect("just installed");
                sub.insert_post(
                    k,
                    hc::addr(&old_key[..k], dmax),
                    &old_key[..k],
                    old_val,
                    mode,
                );
                sub.insert_post(k, hc::addr(key, dmax), key, value, mode);
                None
            }
            Probe::Sub => {
                let node_post_len = node.post_len;
                let sub = node.sub_mut(k, h).expect("probe said sub");
                if sub.infix_matches(k, key) {
                    return Self::insert_rec(k, sub, key, value, mode);
                }
                let mut sub_prefix: KeyBuf = [0; 64];
                sub_prefix[..k].copy_from_slice(key);
                sub.read_infix_into(k, &mut sub_prefix[..k]);
                let dmax = num::max_diverging_bit(key, &sub_prefix[..k])
                    .expect("infix mismatch must diverge");
                let new_il = dmax as u8 - 1 - sub.post_len;
                sub.reset_infix(k, new_il, &sub_prefix[..k], mode);
                let mid = DynNode::new(k, dmax as u8, node_post_len - 1 - dmax as u8, key);
                let old_sub = node.swap_sub(k, h, mid);
                let mid = node.sub_mut(k, h).expect("just installed");
                mid.insert_sub(k, hc::addr(&sub_prefix[..k], dmax), old_sub, mode);
                mid.insert_post(k, hc::addr(key, dmax), key, value, mode);
                None
            }
        }
    }

    /// Point query.
    pub fn get(&self, key: &[u64]) -> Option<&V> {
        self.check_key(key);
        let k = self.k;
        let mut node = self.root.as_deref()?;
        loop {
            if !node.infix_matches(k, key) {
                return None;
            }
            let h = hc::addr(key, node.post_len as u32);
            match node.get_slot(k, h)? {
                SlotRef::Post { pf_off, value } => {
                    return node.postfix_matches(k, pf_off, key).then_some(value);
                }
                SlotRef::Sub(sub) => node = sub,
            }
        }
    }

    /// Point query with mutable access.
    pub fn get_mut(&mut self, key: &[u64]) -> Option<&mut V> {
        self.check_key(key);
        let k = self.k;
        let mut node = self.root.as_deref_mut()?;
        loop {
            if !node.infix_matches(k, key) {
                return None;
            }
            let h = hc::addr(key, node.post_len as u32);
            match node.probe(k, h) {
                Probe::Empty => return None,
                Probe::Post { pf_off } => {
                    if !node.postfix_matches(k, pf_off, key) {
                        return None;
                    }
                    return node.post_value_mut(k, h);
                }
                Probe::Sub => node = node.sub_mut(k, h).expect("probe said sub"),
            }
        }
    }

    /// Whether `key` is stored.
    pub fn contains(&self, key: &[u64]) -> bool {
        self.get(key).is_some()
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&mut self, key: &[u64]) -> Option<V> {
        self.check_key(key);
        let (k, mode) = (self.k, self.mode);
        let root = self.root.as_deref_mut()?;
        let (removed, _) = Self::remove_rec(k, root, key, mode, true);
        if removed.is_some() {
            self.len -= 1;
            if self.root.as_ref().is_some_and(|r| r.n_children() == 0) {
                self.root = None;
            }
        }
        removed
    }

    fn remove_rec(
        k: usize,
        node: &mut DynNode<V>,
        key: &[u64],
        mode: ReprMode,
        is_root: bool,
    ) -> (Option<V>, bool) {
        if !node.infix_matches(k, key) {
            return (None, false);
        }
        let h = hc::addr(key, node.post_len as u32);
        match node.probe(k, h) {
            Probe::Empty => (None, false),
            Probe::Post { pf_off } => {
                if !node.postfix_matches(k, pf_off, key) {
                    return (None, false);
                }
                let v = node.remove_post(k, h, mode);
                (Some(v), !is_root && node.n_children() == 1)
            }
            Probe::Sub => {
                let sub = node.sub_mut(k, h).expect("probe said sub");
                let (removed, underflow) = Self::remove_rec(k, sub, key, mode, false);
                if underflow {
                    Self::merge_single_child(k, node, h, key, mode);
                }
                (removed, false)
            }
        }
    }

    fn merge_single_child(k: usize, node: &mut DynNode<V>, h: u64, key: &[u64], mode: ReprMode) {
        let sub = node.sub_mut(k, h).expect("merge target must be a sub");
        debug_assert_eq!(sub.n_children(), 1);
        let mut rem_key: KeyBuf = [0; 64];
        rem_key[..k].copy_from_slice(key);
        sub.read_infix_into(k, &mut rem_key[..k]);
        let (ch_addr, slot) = sub.iter_slots(k).next().expect("one child");
        hc::apply_addr(&mut rem_key[..k], ch_addr, sub.post_len as u32);
        match slot {
            SlotRef::Post { pf_off, .. } => sub.read_postfix_into(k, pf_off, &mut rem_key[..k]),
            SlotRef::Sub(g) => g.read_infix_into(k, &mut rem_key[..k]),
        }
        let sub_infix_len = sub.infix_len;
        let (_, child) = sub.take_single_child(k).expect("one child");
        match child {
            DynChild::Post(v) => {
                node.replace_sub_with_post(k, h, &rem_key[..k], v, mode);
            }
            DynChild::Sub(mut gsub) => {
                let new_il = gsub.infix_len + sub_infix_len + 1;
                gsub.reset_infix(k, new_il, &rem_key[..k], mode);
                node.swap_sub(k, h, gsub);
            }
        }
    }

    /// Window query via visitor: calls `visit(key, value)` for every
    /// entry inside `[min, max]` (inclusive per dimension). Returns the
    /// number of matches. The visitor form avoids per-result key
    /// allocations; see [`PhTreeDyn::query_collect`] for a `Vec`-based
    /// convenience.
    pub fn query_visit(
        &self,
        min: &[u64],
        max: &[u64],
        visit: &mut dyn FnMut(&[u64], &V),
    ) -> usize {
        self.check_key(min);
        self.check_key(max);
        super::query::query_visit(self, min, max, visit)
    }

    /// Window query returning owned `(key, value-clone)` pairs.
    pub fn query_collect(&self, min: &[u64], max: &[u64]) -> Vec<(Vec<u64>, V)>
    where
        V: Clone,
    {
        let mut out = Vec::new();
        self.query_visit(min, max, &mut |k, v| out.push((k.to_vec(), v.clone())));
        out
    }

    /// Number of entries inside the window.
    pub fn query_count(&self, min: &[u64], max: &[u64]) -> usize {
        self.query_visit(min, max, &mut |_, _| {})
    }

    /// Visits every entry.
    pub fn for_each(&self, visit: &mut dyn FnMut(&[u64], &V)) {
        let lo = vec![0u64; self.k];
        let hi = vec![u64::MAX; self.k];
        self.query_visit(&lo, &hi, visit);
    }

    /// Structural statistics (same accounting as [`crate::PhTree::stats`]).
    pub fn stats(&self) -> TreeStats {
        fn walk<V>(n: &DynNode<V>, depth: usize, s: &mut TreeStats) {
            s.nodes += 1;
            s.max_depth = s.max_depth.max(depth);
            s.entries += n.n_posts();
            if n.is_hc() {
                s.hc_nodes += 1;
            } else {
                s.lhc_nodes += 1;
            }
            let bb = n.bits.heap_bytes();
            if bb > 0 {
                s.allocations += 1;
                s.total_bytes += bb + ALLOC_OVERHEAD;
                s.bit_bytes += bb;
            }
            // Child vectors are charged at *capacity*, not length —
            // amortised growth slack is real heap usage until a shrink
            // pass releases it. (ZST values never allocate; a ZST Vec
            // reports usize::MAX capacity.)
            if n.subs.capacity() > 0 {
                s.allocations += 1;
                s.total_bytes +=
                    n.subs.capacity() * std::mem::size_of::<DynNode<V>>() + ALLOC_OVERHEAD;
            }
            if std::mem::size_of::<V>() > 0 && n.values.capacity() > 0 {
                s.allocations += 1;
                s.total_bytes += n.values.capacity() * std::mem::size_of::<V>() + ALLOC_OVERHEAD;
            }
            for sub in n.subs.iter() {
                walk(sub, depth + 1, s);
            }
        }
        let mut s = TreeStats::default();
        if let Some(r) = self.root.as_deref() {
            s.allocations += 1;
            s.total_bytes += std::mem::size_of::<DynNode<V>>() + ALLOC_OVERHEAD;
            walk(r, 1, &mut s);
        }
        s
    }

    /// Validates all structural invariants (test helper; O(n)).
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        if let Some(r) = &self.root {
            r.check_invariants(self.k, true);
            let mut count = 0;
            self.for_each(&mut |_, _| count += 1);
            assert_eq!(count, self.len, "len bookkeeping");
        } else {
            assert_eq!(self.len, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_map_semantics() {
        let mut t: PhTreeDyn<u32> = PhTreeDyn::new(3);
        assert_eq!(t.insert(&[1, 2, 3], 1), None);
        assert_eq!(t.insert(&[1, 2, 3], 2), Some(1));
        assert_eq!(t.insert(&[9, 9, 9], 3), None);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(&[1, 2, 3]), Some(&2));
        assert_eq!(t.get(&[1, 2, 4]), None);
        *t.get_mut(&[9, 9, 9]).unwrap() = 7;
        assert_eq!(t.remove(&[9, 9, 9]), Some(7));
        assert_eq!(t.len(), 1);
        t.check_invariants();
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_key_len_panics() {
        let mut t: PhTreeDyn<u32> = PhTreeDyn::new(3);
        t.insert(&[1, 2], 0);
    }

    #[test]
    fn random_ops_model_check() {
        let mut t: PhTreeDyn<u64> = PhTreeDyn::new(2);
        let mut model = std::collections::BTreeMap::new();
        let mut x = 3u64;
        for i in 0..3000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = vec![x % 64, (x >> 13) % 64];
            match x % 3 {
                0 | 1 => {
                    assert_eq!(t.insert(&key, i), model.insert(key.clone(), i));
                }
                _ => {
                    assert_eq!(t.remove(&key), model.remove(&key));
                }
            }
            assert_eq!(t.len(), model.len());
        }
        t.check_invariants();
        for (key, v) in &model {
            assert_eq!(t.get(key), Some(v));
        }
        let mut seen = 0;
        t.for_each(&mut |k, v| {
            assert_eq!(model.get(k), Some(v));
            seen += 1;
        });
        assert_eq!(seen, model.len());
    }

    #[test]
    fn query_matches_brute_force() {
        let mut t: PhTreeDyn<()> = PhTreeDyn::new(4);
        let mut keys = Vec::new();
        let mut x = 17u64;
        for _ in 0..800 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = vec![x % 32, (x >> 8) % 32, (x >> 16) % 32, (x >> 24) % 32];
            t.insert(&key, ());
            keys.push(key);
        }
        keys.sort();
        keys.dedup();
        let (min, max) = (vec![4u64, 0, 8, 2], vec![20u64, 30, 25, 29]);
        let got = t.query_count(&min, &max);
        let want = keys
            .iter()
            .filter(|key| (0..4).all(|d| min[d] <= key[d] && key[d] <= max[d]))
            .count();
        assert_eq!(got, want);
    }

    #[test]
    fn bulk_load_matches_sequential() {
        let mut x = 11u64;
        let mut items = Vec::new();
        for i in 0..1500u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            items.push((vec![x % 256, (x >> 16) % 256, (x >> 32) % 256], i));
        }
        let bulk = PhTreeDyn::bulk_load(3, items.clone());
        bulk.check_invariants();
        let mut seq: PhTreeDyn<u64> = PhTreeDyn::new(3);
        for (k, v) in &items {
            seq.insert(k, *v);
        }
        assert_eq!(bulk.len(), seq.len());
        seq.shrink_to_fit();
        let (a, b) = (bulk.stats(), seq.stats());
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.hc_nodes, b.hc_nodes);
        // Bulk-built nodes carry zero slack: byte-for-byte identical to
        // the sequentially grown tree after a shrink pass.
        assert_eq!(a.total_bytes, b.total_bytes);
        let mut pairs_a = Vec::new();
        bulk.for_each(&mut |k, v| pairs_a.push((k.to_vec(), *v)));
        let mut pairs_b = Vec::new();
        seq.for_each(&mut |k, v| pairs_b.push((k.to_vec(), *v)));
        assert_eq!(pairs_a, pairs_b);
    }

    #[test]
    fn bulk_load_duplicates_and_edges() {
        let empty: PhTreeDyn<u8> = PhTreeDyn::bulk_load(2, Vec::new());
        assert!(empty.is_empty());
        let one = PhTreeDyn::bulk_load(2, vec![(vec![5, 6], 1u8)]);
        assert_eq!(one.len(), 1);
        assert_eq!(one.get(&[5, 6]), Some(&1));
        // Duplicate keys: last write wins.
        let dup =
            PhTreeDyn::bulk_load(2, vec![(vec![5, 6], 1u8), (vec![7, 8], 2), (vec![5, 6], 3)]);
        assert_eq!(dup.len(), 2);
        assert_eq!(dup.get(&[5, 6]), Some(&3));
        dup.check_invariants();
    }

    #[test]
    fn high_dims_at_runtime() {
        // k chosen at runtime beyond the bench macro's list.
        for k in [1usize, 7, 23, 40, 64] {
            let mut t: PhTreeDyn<usize> = PhTreeDyn::new(k);
            let mut x = 5u64;
            let mut keys = Vec::new();
            for i in 0..300 {
                let key: Vec<u64> = (0..k)
                    .map(|_| {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        x % 16
                    })
                    .collect();
                t.insert(&key, i);
                keys.push(key);
            }
            t.check_invariants();
            for key in &keys {
                assert!(t.contains(key), "k={k}");
            }
        }
    }
}

#[cfg(test)]
mod stats_tests {
    use super::*;

    #[test]
    fn dyn_stats_track_structure() {
        let mut t: PhTreeDyn<()> = PhTreeDyn::new(3);
        let mut x = 1u64;
        for _ in 0..2000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            t.insert(&[x % 128, (x >> 20) % 128, (x >> 40) % 128], ());
        }
        let s = t.stats();
        assert_eq!(s.entries, t.len());
        assert!(s.nodes > 0);
        assert_eq!(s.hc_nodes + s.lhc_nodes, s.nodes);
        assert!(s.max_depth <= 64);
        assert!(s.total_bytes > 0);
        assert!(s.bytes_per_entry() > 0.0);
    }

    #[test]
    fn clear_resets_everything() {
        let mut t: PhTreeDyn<u8> = PhTreeDyn::new(2);
        t.insert(&[1, 2], 3);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.stats().nodes, 0);
        t.insert(&[1, 2], 4);
        assert_eq!(t.get(&[1, 2]), Some(&4));
    }
}
