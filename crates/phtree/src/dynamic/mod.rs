//! Runtime-dimensionality PH-tree.
//!
//! [`PhTreeDyn`] mirrors [`crate::PhTree`] with the dimension count `k`
//! chosen at construction instead of compile time — for workloads like
//! the paper's relational-table outlook (Sect. 5), where the number of
//! indexed columns is only known at runtime. It uses the identical node
//! layout and algorithms; since the PH-tree's structure is canonical,
//! both implementations build byte-identical trees for the same data
//! (the integration tests assert exactly this).

mod node;
mod query;
mod tree;

pub use tree::PhTreeDyn;
