//! Nodes of the runtime-dimensionality PH-tree.
//!
//! Same storage layout as the const-generic [`crate::PhTree`] nodes
//! (see `crate::node`): one packed bit string per node holding
//! `[infix | addresses | kinds | postfixes]` (LHC) or `[infix | 2-bit
//! kinds | fixed-stride postfixes]` (HC), plus capacity-managed vectors
//! of sub-nodes and values (amortised growth, slack released by the
//! shrink pass). The dimension count `k` is a runtime value
//! threaded through every call instead of a const parameter, so the two
//! implementations build *identical* trees for identical data — a
//! property the test suite asserts.

use crate::config::ReprMode;
use phbits::BitBuf;

/// Bits per dimension (`w` in the paper).
pub const W: u32 = 64;

/// Largest `k` for which a node may materialise a full `2^k` hypercube
/// kind table.
const MAX_HC_K: usize = 22;

const KIND_EMPTY: u64 = 0;
const KIND_POST: u64 = 1;
const KIND_SUB: u64 = 2;

/// A child extracted from a node.
pub(crate) enum DynChild<V> {
    Post(V),
    Sub(DynNode<V>),
}

/// Borrow-free slot probe result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Probe {
    Empty,
    Post { pf_off: usize },
    Sub,
}

/// Read-only view of an occupied slot.
pub(crate) enum SlotRef<'a, V> {
    Post { pf_off: usize, value: &'a V },
    Sub(&'a DynNode<V>),
}

/// A node of the dynamic PH-tree.
pub(crate) struct DynNode<V> {
    pub post_len: u8,
    pub infix_len: u8,
    hc: bool,
    pub bits: BitBuf,
    pub subs: Vec<DynNode<V>>,
    pub values: Vec<V>,
}

/// A finished child handed to [`DynNode::from_children`] during
/// bottom-up bulk construction (see `crate::node::BulkChild`).
pub(crate) enum DynBulkChild<V> {
    Post { key: Vec<u64>, value: V },
    Sub(DynNode<V>),
}

impl<V> DynNode<V> {
    pub fn new(k: usize, post_len: u8, infix_len: u8, key: &[u64]) -> Self {
        debug_assert!((post_len as u32) < W);
        debug_assert!(post_len as u32 + (infix_len as u32) < W);
        let mut bits = BitBuf::with_capacity(infix_len as usize * k + 2 * (k + 1));
        bits.grow(infix_len as usize * k);
        let mut n = DynNode {
            post_len,
            infix_len,
            hc: false,
            bits,
            subs: Vec::new(),
            values: Vec::new(),
        };
        n.write_infix(k, key);
        n
    }

    /// Builds a node in one shot from its final set of children
    /// (bottom-up bulk construction; mirrors
    /// `crate::node::Node::from_children` with runtime `k`).
    ///
    /// `children` must be sorted by hypercube address with no
    /// duplicates. The representation is chosen once from the final
    /// child counts and every buffer is allocated at exact final size.
    pub fn from_children(
        k: usize,
        post_len: u8,
        infix_len: u8,
        key: &[u64],
        children: Vec<(u64, DynBulkChild<V>)>,
        mode: ReprMode,
    ) -> Self {
        debug_assert!(children.windows(2).all(|w| w[0].0 < w[1].0));
        let n = children.len();
        let posts = children
            .iter()
            .filter(|(_, c)| matches!(c, DynBulkChild::Post { .. }))
            .count();
        let n_subs = n - posts;
        let ib = infix_len as usize * k;
        let pb = post_len as usize * k;
        let lhc_cost = n * (k + 1) + posts * pb;
        let hc_cost = if k > MAX_HC_K {
            usize::MAX
        } else {
            (1usize << k) * (2 + pb)
        };
        let hc = match mode {
            ReprMode::ForceLhc => false,
            ReprMode::ForceHc => k <= MAX_HC_K,
            ReprMode::Adaptive => hc_cost < lhc_cost,
        };
        let nbits = ib + if hc { hc_cost } else { lhc_cost };
        let mut node = DynNode {
            post_len,
            infix_len,
            hc,
            bits: BitBuf::zeroed(nbits),
            subs: Vec::with_capacity(n_subs),
            values: Vec::with_capacity(posts),
        };
        node.write_infix(k, key);
        if hc {
            let pf_base = node.hc_pf_base(k);
            for (h, child) in children {
                let kind_off = node.hc_kind_off(k, h);
                match child {
                    DynBulkChild::Post { key, value } => {
                        node.bits.write_bits(kind_off, KIND_POST, 2);
                        node.write_postfix_at(k, pf_base + h as usize * pb, &key);
                        node.values.push(value);
                    }
                    DynBulkChild::Sub(sub) => {
                        node.bits.write_bits(kind_off, KIND_SUB, 2);
                        node.subs.push(sub);
                    }
                }
            }
        } else {
            let pf_base = ib + n * (k + 1);
            let mut pr = 0usize;
            for (j, (h, child)) in children.into_iter().enumerate() {
                node.bits.write_bits(ib + j * k, h, k as u32);
                match child {
                    DynBulkChild::Post { key, value } => {
                        node.write_postfix_at(k, pf_base + pr * pb, &key);
                        node.values.push(value);
                        pr += 1;
                    }
                    DynBulkChild::Sub(sub) => {
                        node.bits.set(ib + n * k + j, true);
                        node.subs.push(sub);
                    }
                }
            }
        }
        node
    }

    /// Releases surplus capacity in the bit string and child vectors.
    pub fn shrink_repr(&mut self) {
        self.bits.shrink_to_fit();
        self.subs.shrink_to_fit();
        self.values.shrink_to_fit();
    }

    #[inline]
    pub fn infix_bits(&self, k: usize) -> usize {
        self.infix_len as usize * k
    }

    #[inline]
    pub fn post_bits(&self, k: usize) -> usize {
        self.post_len as usize * k
    }

    #[inline]
    pub fn n_posts(&self) -> usize {
        self.values.len()
    }

    #[inline]
    pub fn n_subs(&self) -> usize {
        self.subs.len()
    }

    #[inline]
    pub fn n_children(&self) -> usize {
        self.n_posts() + self.n_subs()
    }

    #[inline]
    pub fn is_hc(&self) -> bool {
        self.hc
    }

    // ---------------- infix ----------------

    pub fn write_infix(&mut self, k: usize, key: &[u64]) {
        let il = self.infix_len as u32;
        if il == 0 {
            return;
        }
        self.bits
            .write_key(0, il, self.post_len as u32 + 1, &key[..k]);
    }

    pub fn read_infix_into(&self, k: usize, key: &mut [u64]) {
        let il = self.infix_len as u32;
        if il == 0 {
            return;
        }
        self.bits
            .read_key_into(0, il, self.post_len as u32 + 1, &mut key[..k]);
    }

    pub fn infix_matches(&self, k: usize, key: &[u64]) -> bool {
        let il = self.infix_len as u32;
        if il == 0 {
            return true;
        }
        self.bits.eq_key(0, il, self.post_len as u32 + 1, &key[..k])
    }

    pub fn reset_infix(&mut self, k: usize, new_len: u8, key: &[u64], mode: ReprMode) {
        let old = self.infix_bits(k);
        self.infix_len = new_len;
        let new = self.infix_bits(k);
        if new < old {
            self.bits.remove_range(new, old - new);
        } else if new > old {
            self.bits.insert_gap(old, new - old);
        }
        self.write_infix(k, key);
        self.maybe_switch_repr(k, mode);
    }

    // ---------------- layout ----------------

    #[inline]
    fn lhc_addr_off(&self, k: usize, j: usize) -> usize {
        self.infix_bits(k) + j * k
    }

    #[inline]
    fn lhc_kind_off(&self, k: usize, n: usize, j: usize) -> usize {
        self.infix_bits(k) + n * k + j
    }

    #[inline]
    fn lhc_pf_base(&self, k: usize, n: usize) -> usize {
        self.infix_bits(k) + n * (k + 1)
    }

    #[inline]
    fn hc_kind_off(&self, k: usize, h: u64) -> usize {
        self.infix_bits(k) + 2 * h as usize
    }

    #[inline]
    fn hc_pf_base(&self, k: usize) -> usize {
        self.infix_bits(k) + 2 * (1usize << k)
    }

    #[inline]
    pub fn lhc_addr_at(&self, k: usize, j: usize) -> u64 {
        self.bits.read_bits(self.lhc_addr_off(k, j), k as u32)
    }

    #[inline]
    fn lhc_is_sub(&self, k: usize, j: usize) -> bool {
        self.bits.get(self.lhc_kind_off(k, self.n_children(), j))
    }

    #[inline]
    fn lhc_post_rank(&self, k: usize, j: usize) -> usize {
        let n = self.n_children();
        j - self.bits.count_ones(self.lhc_kind_off(k, n, 0), j)
    }

    #[inline]
    fn hc_kind(&self, k: usize, h: u64) -> u64 {
        self.bits.read_bits(self.hc_kind_off(k, h), 2)
    }

    fn hc_ranks(&self, k: usize, h: u64) -> (usize, usize) {
        let base = self.infix_bits(k);
        let nbits = 2 * h as usize;
        let mut posts = 0usize;
        let mut subs = 0usize;
        let mut done = 0usize;
        while done < nbits {
            let chunk = (nbits - done).min(64) as u32;
            let w = self.bits.read_bits(base + done, chunk);
            posts += (w & 0x5555_5555_5555_5555).count_ones() as usize;
            subs += (w & 0xAAAA_AAAA_AAAA_AAAA).count_ones() as usize;
            done += chunk as usize;
        }
        (posts, subs)
    }

    fn lhc_search(&self, k: usize, h: u64) -> Result<usize, usize> {
        use std::cmp::Ordering;
        let ib = self.infix_bits(k);
        let n = self.n_children();
        let key = [h];
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = (lo + hi) / 2;
            match self.bits.cmp_range(ib + mid * k, &key, k) {
                Ordering::Less => lo = mid + 1,
                Ordering::Equal => return Ok(mid),
                Ordering::Greater => hi = mid,
            }
        }
        Err(lo)
    }

    pub fn lhc_lower_bound(&self, k: usize, h: u64) -> usize {
        debug_assert!(!self.hc);
        match self.lhc_search(k, h) {
            Ok(j) | Err(j) => j,
        }
    }

    #[inline]
    pub fn lhc_len(&self) -> usize {
        debug_assert!(!self.hc);
        self.n_children()
    }

    /// LHC: initial state for an incremental scan starting at child `j`
    /// (dense post rank at `j`, postfix base offset) — see
    /// [`Self::lhc_at_ranked`].
    pub fn lhc_scan_state(&self, k: usize, j: usize) -> (usize, usize) {
        debug_assert!(!self.hc);
        (
            self.lhc_post_rank(k, j),
            self.lhc_pf_base(k, self.n_children()),
        )
    }

    /// LHC: like [`Self::lhc_at`], but with the dense post rank `pr` of
    /// child `j` and the postfix base tracked incrementally by the
    /// caller, avoiding the per-child rank popcount during scans.
    pub fn lhc_at_ranked(
        &self,
        k: usize,
        j: usize,
        pr: usize,
        pf_base: usize,
    ) -> (u64, SlotRef<'_, V>) {
        debug_assert!(!self.hc);
        debug_assert_eq!(pr, self.lhc_post_rank(k, j), "rank tracking out of sync");
        let addr = self.lhc_addr_at(k, j);
        let slot = if self.lhc_is_sub(k, j) {
            SlotRef::Sub(&self.subs[j - pr])
        } else {
            SlotRef::Post {
                pf_off: pf_base + pr * self.post_bits(k),
                value: &self.values[pr],
            }
        };
        (addr, slot)
    }

    pub fn lhc_at(&self, k: usize, j: usize) -> (u64, SlotRef<'_, V>) {
        debug_assert!(!self.hc);
        let addr = self.lhc_addr_at(k, j);
        let slot = if self.lhc_is_sub(k, j) {
            let sr = j - self.lhc_post_rank(k, j);
            SlotRef::Sub(&self.subs[sr])
        } else {
            let pr = self.lhc_post_rank(k, j);
            SlotRef::Post {
                pf_off: self.lhc_pf_base(k, self.n_children()) + pr * self.post_bits(k),
                value: &self.values[pr],
            }
        };
        (addr, slot)
    }

    // ---------------- postfixes ----------------

    fn write_postfix_at(&mut self, k: usize, off: usize, key: &[u64]) {
        let pl = self.post_len as u32;
        if pl == 0 {
            return;
        }
        self.bits.write_key(off, pl, 0, &key[..k]);
    }

    pub fn read_postfix_into(&self, k: usize, off: usize, key: &mut [u64]) {
        let pl = self.post_len as u32;
        if pl == 0 {
            return;
        }
        self.bits.read_key_into(off, pl, 0, &mut key[..k]);
    }

    pub fn postfix_matches(&self, k: usize, off: usize, key: &[u64]) -> bool {
        // Fused per-dimension compare with first-mismatch early exit.
        self.bits.eq_key(off, self.post_len as u32, 0, &key[..k])
    }

    // ---------------- lookup ----------------

    pub fn get_slot(&self, k: usize, h: u64) -> Option<SlotRef<'_, V>> {
        if self.hc {
            match self.hc_kind(k, h) {
                KIND_EMPTY => None,
                KIND_POST => {
                    let (pr, _) = self.hc_ranks(k, h);
                    Some(SlotRef::Post {
                        pf_off: self.hc_pf_base(k) + h as usize * self.post_bits(k),
                        value: &self.values[pr],
                    })
                }
                _ => {
                    let (_, sr) = self.hc_ranks(k, h);
                    Some(SlotRef::Sub(&self.subs[sr]))
                }
            }
        } else {
            match self.lhc_search(k, h) {
                Ok(j) => Some(self.lhc_at(k, j).1),
                Err(_) => None,
            }
        }
    }

    pub fn probe(&self, k: usize, h: u64) -> Probe {
        if self.hc {
            match self.hc_kind(k, h) {
                KIND_EMPTY => Probe::Empty,
                KIND_POST => Probe::Post {
                    pf_off: self.hc_pf_base(k) + h as usize * self.post_bits(k),
                },
                _ => Probe::Sub,
            }
        } else {
            match self.lhc_search(k, h) {
                Ok(j) => {
                    if self.lhc_is_sub(k, j) {
                        Probe::Sub
                    } else {
                        let pr = self.lhc_post_rank(k, j);
                        Probe::Post {
                            pf_off: self.lhc_pf_base(k, self.n_children()) + pr * self.post_bits(k),
                        }
                    }
                }
                Err(_) => Probe::Empty,
            }
        }
    }

    fn post_rank_of(&self, k: usize, h: u64) -> Option<usize> {
        if self.hc {
            if self.hc_kind(k, h) == KIND_POST {
                Some(self.hc_ranks(k, h).0)
            } else {
                None
            }
        } else {
            match self.lhc_search(k, h) {
                Ok(j) if !self.lhc_is_sub(k, j) => Some(self.lhc_post_rank(k, j)),
                _ => None,
            }
        }
    }

    fn sub_rank_of(&self, k: usize, h: u64) -> Option<usize> {
        if self.hc {
            if self.hc_kind(k, h) == KIND_SUB {
                Some(self.hc_ranks(k, h).1)
            } else {
                None
            }
        } else {
            match self.lhc_search(k, h) {
                Ok(j) if self.lhc_is_sub(k, j) => Some(j - self.lhc_post_rank(k, j)),
                _ => None,
            }
        }
    }

    pub fn post_value_mut(&mut self, k: usize, h: u64) -> Option<&mut V> {
        let pr = self.post_rank_of(k, h)?;
        Some(&mut self.values[pr])
    }

    pub fn sub_mut(&mut self, k: usize, h: u64) -> Option<&mut DynNode<V>> {
        let sr = self.sub_rank_of(k, h)?;
        Some(&mut self.subs[sr])
    }

    // ---------------- updates ----------------

    pub fn insert_post(&mut self, k: usize, h: u64, key: &[u64], value: V, mode: ReprMode) {
        let pb = self.post_bits(k);
        if self.hc {
            debug_assert_eq!(self.hc_kind(k, h), KIND_EMPTY);
            let (pr, _) = self.hc_ranks(k, h);
            let off = self.hc_kind_off(k, h);
            self.bits.write_bits(off, KIND_POST, 2);
            let pf = self.hc_pf_base(k) + h as usize * pb;
            self.write_postfix_at(k, pf, key);
            self.values.insert(pr, value);
        } else {
            let j = match self.lhc_search(k, h) {
                Err(j) => j,
                Ok(_) => panic!("insert_post into occupied slot"),
            };
            let n = self.n_children();
            let pr = self.lhc_post_rank(k, j);
            self.bits.insert_gaps(&[
                (self.lhc_addr_off(k, j), k),
                (self.lhc_kind_off(k, n, j), 1),
                (self.lhc_pf_base(k, n) + pr * pb, pb),
            ]);
            let n = n + 1;
            self.bits.write_bits(self.lhc_addr_off(k, j), h, k as u32);
            let pf = self.lhc_pf_base(k, n) + pr * pb;
            self.write_postfix_at(k, pf, key);
            self.values.insert(pr, value);
        }
        self.maybe_switch_repr(k, mode);
    }

    pub fn insert_sub(&mut self, k: usize, h: u64, sub: DynNode<V>, mode: ReprMode) {
        if self.hc {
            debug_assert_eq!(self.hc_kind(k, h), KIND_EMPTY);
            let (_, sr) = self.hc_ranks(k, h);
            let off = self.hc_kind_off(k, h);
            self.bits.write_bits(off, KIND_SUB, 2);
            self.subs.insert(sr, sub);
        } else {
            let j = match self.lhc_search(k, h) {
                Err(j) => j,
                Ok(_) => panic!("insert_sub into occupied slot"),
            };
            let n = self.n_children();
            let sr = j - self.lhc_post_rank(k, j);
            self.bits.insert_gaps(&[
                (self.lhc_addr_off(k, j), k),
                (self.lhc_kind_off(k, n, j), 1),
            ]);
            let n = n + 1;
            self.bits.write_bits(self.lhc_addr_off(k, j), h, k as u32);
            self.bits.set(self.lhc_kind_off(k, n, j), true);
            self.subs.insert(sr, sub);
        }
        self.maybe_switch_repr(k, mode);
    }

    pub fn remove_post(&mut self, k: usize, h: u64, mode: ReprMode) -> V {
        let pb = self.post_bits(k);
        let v = if self.hc {
            assert_eq!(self.hc_kind(k, h), KIND_POST);
            let (pr, _) = self.hc_ranks(k, h);
            let off = self.hc_kind_off(k, h);
            self.bits.write_bits(off, KIND_EMPTY, 2);
            let pf = self.hc_pf_base(k) + h as usize * pb;
            self.zero_postfix(k, pf);
            self.values.remove(pr)
        } else {
            let j = self.lhc_search(k, h).expect("remove_post: empty slot");
            assert!(!self.lhc_is_sub(k, j));
            let n = self.n_children();
            let pr = self.lhc_post_rank(k, j);
            self.bits.remove_ranges(&[
                (self.lhc_addr_off(k, j), k),
                (self.lhc_kind_off(k, n, j), 1),
                (self.lhc_pf_base(k, n) + pr * pb, pb),
            ]);
            self.values.remove(pr)
        };
        self.maybe_switch_repr(k, mode);
        v
    }

    fn zero_postfix(&mut self, k: usize, off: usize) {
        let pb = self.post_bits(k);
        let mut done = 0;
        while done < pb {
            let chunk = (pb - done).min(64) as u32;
            self.bits.write_bits(off + done, 0, chunk);
            done += chunk as usize;
        }
    }

    pub fn replace_post_value(&mut self, k: usize, h: u64, value: V) -> V {
        std::mem::replace(
            self.post_value_mut(k, h)
                .expect("replace_post_value: not a post"),
            value,
        )
    }

    pub fn swap_post_for_sub(&mut self, k: usize, h: u64, sub: DynNode<V>, mode: ReprMode) -> V {
        let pb = self.post_bits(k);
        let v = if self.hc {
            assert_eq!(self.hc_kind(k, h), KIND_POST);
            let (pr, sr) = self.hc_ranks(k, h);
            let off = self.hc_kind_off(k, h);
            self.bits.write_bits(off, KIND_SUB, 2);
            let pf = self.hc_pf_base(k) + h as usize * pb;
            self.zero_postfix(k, pf);
            self.subs.insert(sr, sub);
            self.values.remove(pr)
        } else {
            let j = self
                .lhc_search(k, h)
                .expect("swap_post_for_sub: empty slot");
            assert!(!self.lhc_is_sub(k, j));
            let n = self.n_children();
            let pr = self.lhc_post_rank(k, j);
            let sr = j - pr;
            let pf = self.lhc_pf_base(k, n) + pr * pb;
            self.bits.remove_range(pf, pb);
            self.bits.set(self.lhc_kind_off(k, n, j), true);
            self.subs.insert(sr, sub);
            self.values.remove(pr)
        };
        self.maybe_switch_repr(k, mode);
        v
    }

    pub fn replace_sub_with_post(
        &mut self,
        k: usize,
        h: u64,
        key: &[u64],
        value: V,
        mode: ReprMode,
    ) {
        let pb = self.post_bits(k);
        if self.hc {
            assert_eq!(self.hc_kind(k, h), KIND_SUB);
            let (pr, sr) = self.hc_ranks(k, h);
            let off = self.hc_kind_off(k, h);
            self.bits.write_bits(off, KIND_POST, 2);
            let pf = self.hc_pf_base(k) + h as usize * pb;
            self.write_postfix_at(k, pf, key);
            self.subs.remove(sr);
            self.values.insert(pr, value);
        } else {
            let j = self
                .lhc_search(k, h)
                .expect("replace_sub_with_post: empty slot");
            assert!(self.lhc_is_sub(k, j));
            let n = self.n_children();
            let pr = self.lhc_post_rank(k, j);
            let sr = j - pr;
            self.bits.set(self.lhc_kind_off(k, n, j), false);
            let pf = self.lhc_pf_base(k, n) + pr * pb;
            self.bits.insert_gap(pf, pb);
            self.write_postfix_at(k, pf, key);
            self.subs.remove(sr);
            self.values.insert(pr, value);
        }
        self.maybe_switch_repr(k, mode);
    }

    pub fn swap_sub(&mut self, k: usize, h: u64, sub: DynNode<V>) -> DynNode<V> {
        let sr = self.sub_rank_of(k, h).expect("swap_sub: not a sub slot");
        std::mem::replace(&mut self.subs[sr], sub)
    }

    pub fn take_single_child(&mut self, k: usize) -> Option<(u64, DynChild<V>)> {
        if self.n_children() != 1 {
            return None;
        }
        let (h, is_sub) = if self.hc {
            let mut found = None;
            for h in 0..(1u64 << k) {
                match self.hc_kind(k, h) {
                    KIND_EMPTY => {}
                    kd => {
                        found = Some((h, kd == KIND_SUB));
                        break;
                    }
                }
            }
            found.expect("one child")
        } else {
            (self.lhc_addr_at(k, 0), self.lhc_is_sub(k, 0))
        };
        self.bits.truncate(self.infix_bits(k));
        self.hc = false;
        let child = if is_sub {
            DynChild::Sub(self.subs.remove(0))
        } else {
            DynChild::Post(self.values.remove(0))
        };
        Some((h, child))
    }

    // ---------------- HC ⇄ LHC ----------------

    #[inline]
    fn lhc_cost_bits(&self, k: usize, n: usize, posts: usize) -> usize {
        n * (k + 1) + posts * self.post_bits(k)
    }

    #[inline]
    fn hc_cost_bits(&self, k: usize) -> usize {
        if k > MAX_HC_K {
            return usize::MAX;
        }
        (1usize << k) * (2 + self.post_bits(k))
    }

    pub fn maybe_switch_repr(&mut self, k: usize, mode: ReprMode) {
        let want_hc = match mode {
            ReprMode::ForceLhc => false,
            ReprMode::ForceHc => k <= MAX_HC_K,
            ReprMode::Adaptive => {
                self.hc_cost_bits(k) < self.lhc_cost_bits(k, self.n_children(), self.n_posts())
            }
        };
        if want_hc != self.hc {
            if want_hc {
                self.convert_to_hc(k);
            } else {
                self.convert_to_lhc(k);
            }
        }
    }

    fn convert_to_hc(&mut self, k: usize) {
        debug_assert!(!self.hc);
        let ib = self.infix_bits(k);
        let pb = self.post_bits(k);
        let n = self.n_children();
        let slots = 1usize << k;
        let mut bits = BitBuf::zeroed(ib + slots * (2 + pb));
        bits.copy_bits_from(&self.bits, 0, 0, ib);
        let pf_base_new = ib + 2 * slots;
        let mut pr = 0usize;
        for j in 0..n {
            let h = self.lhc_addr_at(k, j) as usize;
            if self.lhc_is_sub(k, j) {
                bits.write_bits(ib + 2 * h, KIND_SUB, 2);
            } else {
                bits.write_bits(ib + 2 * h, KIND_POST, 2);
                bits.copy_bits_from(
                    &self.bits,
                    self.lhc_pf_base(k, n) + pr * pb,
                    pf_base_new + h * pb,
                    pb,
                );
                pr += 1;
            }
        }
        self.bits = bits;
        self.hc = true;
    }

    fn convert_to_lhc(&mut self, k: usize) {
        debug_assert!(self.hc);
        let ib = self.infix_bits(k);
        let pb = self.post_bits(k);
        let n = self.n_children();
        let posts = self.n_posts();
        let mut bits = BitBuf::zeroed(ib + n * (k + 1) + posts * pb);
        bits.copy_bits_from(&self.bits, 0, 0, ib);
        let pf_base_new = ib + n * (k + 1);
        let mut j = 0usize;
        let mut pr = 0usize;
        for h in 0..(1u64 << k) {
            match self.hc_kind(k, h) {
                KIND_EMPTY => continue,
                KIND_POST => {
                    bits.write_bits(ib + j * k, h, k as u32);
                    bits.copy_bits_from(
                        &self.bits,
                        self.hc_pf_base(k) + h as usize * pb,
                        pf_base_new + pr * pb,
                        pb,
                    );
                    pr += 1;
                }
                _ => {
                    bits.write_bits(ib + j * k, h, k as u32);
                    bits.set(ib + n * k + j, true);
                }
            }
            j += 1;
        }
        debug_assert_eq!(j, n);
        self.bits = bits;
        self.hc = false;
    }

    // ---------------- iteration ----------------

    pub fn iter_slots(&self, k: usize) -> DynSlotIter<'_, V> {
        let pf_base = if self.hc {
            self.hc_pf_base(k)
        } else {
            self.lhc_pf_base(k, self.n_children())
        };
        DynSlotIter {
            node: self,
            k,
            pf_base,
            pb: self.post_bits(k),
            pos: 0,
            pr: 0,
            sr: 0,
        }
    }

    // ---------------- invariants ----------------

    pub fn check_invariants(&self, k: usize, is_root: bool) {
        let n = self.n_children();
        let posts = self.n_posts();
        if self.hc {
            assert!(k <= MAX_HC_K);
            assert_eq!(
                self.bits.len(),
                self.infix_bits(k) + (1usize << k) * (2 + self.post_bits(k)),
                "HC bit length"
            );
        } else {
            let ib = self.infix_bits(k);
            assert_eq!(
                self.bits.len(),
                ib + n * (k + 1) + posts * self.post_bits(k),
                "LHC bit length"
            );
            // Single pass: read each address once, compare to its
            // predecessor; count kind bits with one chunked popcount.
            let mut prev = 0u64;
            for j in 0..n {
                let addr = self.bits.read_bits(ib + j * k, k as u32);
                assert!(j == 0 || prev < addr, "LHC addresses not sorted/unique");
                prev = addr;
            }
            assert_eq!(self.bits.count_ones(ib + n * k, n), self.n_subs());
        }
        if !is_root {
            assert!(n >= 2, "non-root node with < 2 children");
        } else {
            assert_eq!(self.post_len as u32, W - 1);
            assert_eq!(self.infix_len, 0);
        }
        for sub in self.subs.iter() {
            assert_eq!(
                sub.post_len as u32 + sub.infix_len as u32 + 1,
                self.post_len as u32
            );
            sub.check_invariants(k, false);
        }
    }
}

/// Iterator over occupied slots in address order.
pub(crate) struct DynSlotIter<'a, V> {
    node: &'a DynNode<V>,
    k: usize,
    /// Bit offset of the postfix area (loop-invariant).
    pf_base: usize,
    /// Postfix stride in bits (loop-invariant).
    pb: usize,
    pos: usize,
    pr: usize,
    sr: usize,
}

impl<'a, V> Iterator for DynSlotIter<'a, V> {
    type Item = (u64, SlotRef<'a, V>);

    fn next(&mut self) -> Option<Self::Item> {
        let node = self.node;
        let k = self.k;
        if node.hc {
            while self.pos < (1usize << k) {
                let h = self.pos as u64;
                self.pos += 1;
                match node.hc_kind(k, h) {
                    KIND_EMPTY => {}
                    KIND_POST => {
                        let r = SlotRef::Post {
                            pf_off: self.pf_base + h as usize * self.pb,
                            value: &node.values[self.pr],
                        };
                        self.pr += 1;
                        return Some((h, r));
                    }
                    _ => {
                        let r = SlotRef::Sub(&node.subs[self.sr]);
                        self.sr += 1;
                        return Some((h, r));
                    }
                }
            }
            None
        } else {
            if self.pos >= node.n_children() {
                return None;
            }
            let j = self.pos;
            self.pos += 1;
            let h = node.lhc_addr_at(k, j);
            if node.lhc_is_sub(k, j) {
                let r = SlotRef::Sub(&node.subs[self.sr]);
                self.sr += 1;
                Some((h, r))
            } else {
                let r = SlotRef::Post {
                    pf_off: self.pf_base + self.pr * self.pb,
                    value: &node.values[self.pr],
                };
                self.pr += 1;
                Some((h, r))
            }
        }
    }
}
