//! Full-tree iteration.

use crate::query::Query;
use crate::tree::PhTree;

/// Iterator over every entry of a [`PhTree`], returned by
/// [`PhTree::iter`]. Order is depth-first by hypercube address (a
/// Z-order-like traversal), not sorted.
pub struct Iter<'t, V, const K: usize> {
    inner: Query<'t, V, K>,
}

impl<'t, V, const K: usize> Iterator for Iter<'t, V, K> {
    type Item = ([u64; K], &'t V);

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next()
    }
}

impl<V, const K: usize> PhTree<V, K> {
    /// Iterates over all entries.
    ///
    /// ```
    /// let mut t: phtree::PhTree<u32, 2> = phtree::PhTree::new();
    /// t.insert([1, 2], 10);
    /// t.insert([3, 4], 20);
    /// let total: u32 = t.iter().map(|(_, &v)| v).sum();
    /// assert_eq!(total, 30);
    /// ```
    pub fn iter(&self) -> Iter<'_, V, K> {
        Iter {
            inner: self.query(&[0; K], &[u64::MAX; K]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iterates_all_entries_once() {
        let mut t: PhTree<u64, 2> = PhTree::new();
        for i in 0..256u64 {
            t.insert([i % 13, i / 13], i);
        }
        let mut seen: Vec<[u64; 2]> = t.iter().map(|(k, _)| k).collect();
        assert_eq!(seen.len(), t.len());
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), t.len());
    }

    #[test]
    fn empty_iter() {
        let t: PhTree<(), 5> = PhTree::new();
        assert_eq!(t.iter().count(), 0);
    }
}
