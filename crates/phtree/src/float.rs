//! `f64`-keyed convenience wrapper.

use crate::key::{key_to_point, point_to_key};
use crate::knn::F64Euclidean;
use crate::query::Query;
use crate::stats::TreeStats;
use crate::tree::PhTree;
use crate::ReprMode;

/// A PH-tree over `K`-dimensional `f64` points.
///
/// Coordinates are converted to sortable 64-bit keys with the
/// order-preserving IEEE-754 transformation of the paper's Sect. 3.3
/// ([`crate::key::f64_to_key`]) on the way in and decoded on the way
/// out. `-0.0` is normalised to `+0.0`. NaN coordinates are storable but
/// sort above `+∞`; window queries treat them accordingly.
///
/// See [`PhTree`] for the integer-keyed core API.
#[derive(Clone)]
pub struct PhTreeF64<V, const K: usize> {
    inner: PhTree<V, K>,
}

impl<V, const K: usize> Default for PhTreeF64<V, K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V, const K: usize> PhTreeF64<V, K> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        PhTreeF64 {
            inner: PhTree::new(),
        }
    }

    /// Creates an empty tree with an explicit node representation policy.
    pub fn with_mode(mode: ReprMode) -> Self {
        PhTreeF64 {
            inner: PhTree::with_mode(mode),
        }
    }

    /// Number of entries stored.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.inner.clear()
    }

    /// Point query.
    pub fn get(&self, point: &[f64; K]) -> Option<&V> {
        self.inner.get(&point_to_key(point))
    }

    /// Whether `point` is stored.
    pub fn contains(&self, point: &[f64; K]) -> bool {
        self.inner.contains(&point_to_key(point))
    }

    /// Window query over the rectangle `[min, max]` (inclusive). Because
    /// the key conversion is order-preserving per dimension, this is an
    /// exact range query on the original coordinates.
    pub fn query<'t>(&'t self, min: &[f64; K], max: &[f64; K]) -> QueryF64<'t, V, K> {
        QueryF64 {
            inner: self.inner.query(&point_to_key(min), &point_to_key(max)),
        }
    }

    /// Iterates over all entries.
    pub fn iter(&self) -> impl Iterator<Item = ([f64; K], &V)> {
        self.inner.iter().map(|(k, v)| (key_to_point(&k), v))
    }

    /// Returns the `n` entries nearest to `center` under Euclidean
    /// distance on the original `f64` coordinates, nearest first, as
    /// `(point, value, distance)` triples.
    pub fn knn(&self, center: &[f64; K], n: usize) -> Vec<([f64; K], &V, f64)> {
        self.inner
            .knn_with(&point_to_key(center), n, &F64Euclidean)
            .into_iter()
            .map(|nb| (key_to_point(&nb.key), nb.value, nb.dist))
            .collect()
    }

    /// Structural statistics / memory accounting.
    pub fn stats(&self) -> TreeStats {
        self.inner.stats()
    }

    /// Access to the underlying integer-keyed tree.
    pub fn as_int_tree(&self) -> &PhTree<V, K> {
        &self.inner
    }
}

/// Mutating operations. `V: Clone` for the same reason as on
/// [`PhTree`]: writes path-copy nodes still shared with other tree
/// versions.
impl<V: Clone, const K: usize> PhTreeF64<V, K> {
    /// Inserts `point → value`, returning the previous value if the
    /// point was already present.
    pub fn insert(&mut self, point: [f64; K], value: V) -> Option<V> {
        self.inner.insert(point_to_key(&point), value)
    }

    /// Point query with mutable access.
    pub fn get_mut(&mut self, point: &[f64; K]) -> Option<&mut V> {
        self.inner.get_mut(&point_to_key(point))
    }

    /// Removes `point`, returning its value if present.
    pub fn remove(&mut self, point: &[f64; K]) -> Option<V> {
        self.inner.remove(&point_to_key(point))
    }

    /// Releases surplus capacity in every node.
    pub fn shrink_to_fit(&mut self) {
        self.inner.shrink_to_fit()
    }
}

/// Window query iterator over `f64` points, returned by
/// [`PhTreeF64::query`].
pub struct QueryF64<'t, V, const K: usize> {
    inner: Query<'t, V, K>,
}

impl<'t, V, const K: usize> Iterator for QueryF64<'t, V, K> {
    type Item = ([f64; K], &'t V);

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next().map(|(k, v)| (key_to_point(&k), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_roundtrip() {
        let mut t: PhTreeF64<u32, 2> = PhTreeF64::new();
        assert_eq!(t.insert([0.5, -0.25], 1), None);
        assert_eq!(t.insert([0.5, -0.25], 2), Some(1));
        assert_eq!(t.get(&[0.5, -0.25]), Some(&2));
        assert_eq!(t.remove(&[0.5, -0.25]), Some(2));
        assert!(t.is_empty());
    }

    #[test]
    fn negative_zero_unifies() {
        let mut t: PhTreeF64<u32, 1> = PhTreeF64::new();
        t.insert([-0.0], 1);
        assert_eq!(t.get(&[0.0]), Some(&1));
        assert_eq!(t.insert([0.0], 2), Some(1));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn window_query_with_negatives() {
        let mut t: PhTreeF64<i32, 2> = PhTreeF64::new();
        let pts = [
            ([-2.0, -2.0], -1),
            ([-0.5, 0.5], 0),
            ([0.5, -0.5], 1),
            ([1.5, 1.5], 2),
        ];
        for (p, v) in pts {
            t.insert(p, v);
        }
        let mut hits: Vec<i32> = t
            .query(&[-1.0, -1.0], &[1.0, 1.0])
            .map(|(_, &v)| v)
            .collect();
        hits.sort();
        assert_eq!(hits, vec![0, 1]);
    }

    #[test]
    fn knn_euclidean_on_floats() {
        let mut t: PhTreeF64<&str, 2> = PhTreeF64::new();
        t.insert([0.0, 0.0], "o");
        t.insert([0.3, 0.4], "p");
        t.insert([10.0, 10.0], "q");
        let nn = t.knn(&[0.0, 0.0], 2);
        assert_eq!(*nn[0].1, "o");
        assert_eq!(*nn[1].1, "p");
        assert!((nn[1].2 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn iter_decodes_points() {
        let mut t: PhTreeF64<(), 3> = PhTreeF64::new();
        t.insert([1.5, -2.5, 0.0], ());
        let pts: Vec<[f64; 3]> = t.iter().map(|(p, _)| p).collect();
        assert_eq!(pts, vec![[1.5, -2.5, 0.0]]);
    }
}

#[cfg(test)]
mod boundary_tests {
    use super::*;

    /// Windows straddling the IEEE exponent boundary at 0.5 (the
    /// Sect. 4.3.6 hotspot) must still be exact.
    #[test]
    fn window_across_exponent_boundary() {
        let mut t: PhTreeF64<(), 1> = PhTreeF64::new();
        let pts: Vec<f64> = (0..1000).map(|i| 0.49995 + i as f64 * 1e-7).collect();
        for &p in &pts {
            t.insert([p], ());
        }
        let (lo, hi) = (0.49998, 0.50002);
        let got = t.query(&[lo], &[hi]).count();
        let want = pts.iter().filter(|&&p| p >= lo && p <= hi).count();
        assert_eq!(got, want);
        assert!(got > 0);
    }

    #[test]
    fn knn_across_negative_positive() {
        let mut t: PhTreeF64<i32, 1> = PhTreeF64::new();
        t.insert([-1.0], -1);
        t.insert([1.0], 1);
        t.insert([-100.0], -100);
        let nn = t.knn(&[-0.1], 2);
        assert_eq!(*nn[0].1, -1);
        assert_eq!(*nn[1].1, 1);
    }

    #[test]
    fn infinities_are_storable_and_queryable() {
        let mut t: PhTreeF64<&str, 1> = PhTreeF64::new();
        t.insert([f64::NEG_INFINITY], "lo");
        t.insert([0.0], "mid");
        t.insert([f64::INFINITY], "hi");
        assert_eq!(t.get(&[f64::INFINITY]), Some(&"hi"));
        let all = t.query(&[f64::NEG_INFINITY], &[f64::INFINITY]).count();
        assert_eq!(all, 3);
        let finite_up = t.query(&[-1.0], &[f64::INFINITY]).count();
        assert_eq!(finite_up, 2);
    }
}
