//! Mutation ops as values — the replay currency of write-ahead logging.
//!
//! The paper's outlook (Sect. 1/5) argues the PH-tree suits persistent
//! storage because every update touches at most two nodes; a durable
//! layer can therefore journal *logical* ops (a key and maybe a value)
//! and replay them onto a snapshot instead of re-serialising structure.
//! [`Op`] is that logical record, and [`PhTree::apply`] /
//! [`PhTree::replay`] are the replay entry points used by `phstore`'s
//! recovery path.

use crate::tree::PhTree;

/// One logical mutation of a `K`-dimensional tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op<V, const K: usize> {
    /// Insert (or overwrite) `key` with `value`.
    Insert {
        /// The key being written.
        key: [u64; K],
        /// The value stored under `key`.
        value: V,
    },
    /// Remove `key` if present.
    Remove {
        /// The key being removed.
        key: [u64; K],
    },
}

impl<V, const K: usize> Op<V, K> {
    /// The key this op touches.
    pub fn key(&self) -> &[u64; K] {
        match self {
            Op::Insert { key, .. } => key,
            Op::Remove { key } => key,
        }
    }
}

/// What [`PhTree::replay_stats`] did (recovery telemetry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplayStats {
    /// Ops applied in total.
    pub applied: usize,
    /// Ops that went through the O(n) bottom-up bulk builder instead of
    /// individual top-down descents (the empty-tree leading-insert fast
    /// path).
    pub bulk_loaded: usize,
}

impl<V: Clone, const K: usize> PhTree<V, K> {
    /// Applies one logical op, returning the displaced value (the
    /// previous value under the key for an insert, the removed value
    /// for a remove).
    pub fn apply(&mut self, op: Op<V, K>) -> Option<V> {
        match op {
            Op::Insert { key, value } => self.insert(key, value),
            Op::Remove { key } => self.remove(&key),
        }
    }

    /// Replays a sequence of ops in order (recovery entry point),
    /// returning how many were applied.
    ///
    /// Replaying into an *empty* tree routes the leading run of
    /// inserts through [`PhTree::bulk_load`]'s O(n) bottom-up builder
    /// instead of n top-down descents — the common recovery shape (a
    /// snapshotless log, or a log that starts with a load phase) gets
    /// the bulk path for free. Duplicate keys keep the last value
    /// either way, so the result is identical to sequential replay.
    pub fn replay<I: IntoIterator<Item = Op<V, K>>>(&mut self, ops: I) -> usize {
        self.replay_stats(ops).applied
    }

    /// [`PhTree::replay`] with telemetry: also reports how many ops
    /// rode the bulk-load fast path.
    pub fn replay_stats<I: IntoIterator<Item = Op<V, K>>>(&mut self, ops: I) -> ReplayStats {
        let mut stats = ReplayStats::default();
        let mut ops = ops.into_iter();
        if self.is_empty() {
            let mut batch = Vec::new();
            let mut first_non_insert = None;
            for op in ops.by_ref() {
                match op {
                    Op::Insert { key, value } => batch.push((key, value)),
                    other => {
                        first_non_insert = Some(other);
                        break;
                    }
                }
            }
            stats.applied += batch.len();
            stats.bulk_loaded = batch.len();
            if !batch.is_empty() {
                *self = PhTree::bulk_load_with_mode(batch, self.mode());
            }
            if let Some(op) = first_non_insert {
                self.apply(op);
                stats.applied += 1;
            }
        }
        for op in ops {
            self.apply(op);
            stats.applied += 1;
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_matches_direct_calls() {
        let mut a: PhTree<u32, 2> = PhTree::new();
        let mut b: PhTree<u32, 2> = PhTree::new();
        let ops = vec![
            Op::Insert {
                key: [1, 2],
                value: 10,
            },
            Op::Insert {
                key: [3, 4],
                value: 20,
            },
            Op::Insert {
                key: [1, 2],
                value: 30,
            },
            Op::Remove { key: [3, 4] },
            Op::Remove { key: [9, 9] },
        ];
        for op in ops.clone() {
            let got = a.apply(op.clone());
            let want = match op {
                Op::Insert { key, value } => b.insert(key, value),
                Op::Remove { key } => b.remove(&key),
            };
            assert_eq!(got, want);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn replay_bulk_fast_path_matches_sequential() {
        // Empty tree + a leading run of inserts (with duplicates) takes
        // the bulk-load fast path; the result must be indistinguishable
        // from op-by-op application, including the returned count.
        let mut ops = Vec::new();
        for i in 0..800u64 {
            let key = [i % 61, i.wrapping_mul(0x9E3779B97F4A7C15) % 61, i % 13];
            ops.push(Op::Insert { key, value: i });
        }
        ops.push(Op::Remove { key: [0, 0, 0] });
        ops.push(Op::Insert {
            key: [1, 1, 1],
            value: 9999,
        });
        let mut fast: PhTree<u64, 3> = PhTree::new();
        assert_eq!(fast.replay(ops.clone()), ops.len());
        fast.check_invariants();
        let mut slow: PhTree<u64, 3> = PhTree::new();
        for op in ops {
            slow.apply(op);
        }
        assert_eq!(fast, slow);
        assert_eq!(fast.stats().nodes, slow.stats().nodes);
    }

    #[test]
    fn replay_rebuilds_equal_tree() {
        let mut direct: PhTree<u64, 3> = PhTree::new();
        let mut ops = Vec::new();
        for i in 0..500u64 {
            let key = [i % 31, i % 17, i % 7];
            if i % 5 == 0 {
                ops.push(Op::Remove { key });
                direct.remove(&key);
            } else {
                ops.push(Op::Insert { key, value: i });
                direct.insert(key, i);
            }
        }
        let mut replayed: PhTree<u64, 3> = PhTree::new();
        assert_eq!(replayed.replay(ops), 500);
        replayed.check_invariants();
        assert_eq!(replayed, direct);
    }
}
