//! Mutation ops as values — the replay currency of write-ahead logging.
//!
//! The paper's outlook (Sect. 1/5) argues the PH-tree suits persistent
//! storage because every update touches at most two nodes; a durable
//! layer can therefore journal *logical* ops (a key and maybe a value)
//! and replay them onto a snapshot instead of re-serialising structure.
//! [`Op`] is that logical record, and [`PhTree::apply`] /
//! [`PhTree::replay`] are the replay entry points used by `phstore`'s
//! recovery path.

use crate::tree::PhTree;

/// One logical mutation of a `K`-dimensional tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op<V, const K: usize> {
    /// Insert (or overwrite) `key` with `value`.
    Insert {
        /// The key being written.
        key: [u64; K],
        /// The value stored under `key`.
        value: V,
    },
    /// Remove `key` if present.
    Remove {
        /// The key being removed.
        key: [u64; K],
    },
}

impl<V, const K: usize> Op<V, K> {
    /// The key this op touches.
    pub fn key(&self) -> &[u64; K] {
        match self {
            Op::Insert { key, .. } => key,
            Op::Remove { key } => key,
        }
    }
}

impl<V, const K: usize> PhTree<V, K> {
    /// Applies one logical op, returning the displaced value (the
    /// previous value under the key for an insert, the removed value
    /// for a remove).
    pub fn apply(&mut self, op: Op<V, K>) -> Option<V> {
        match op {
            Op::Insert { key, value } => self.insert(key, value),
            Op::Remove { key } => self.remove(&key),
        }
    }

    /// Replays a sequence of ops in order (recovery entry point),
    /// returning how many were applied.
    pub fn replay<I: IntoIterator<Item = Op<V, K>>>(&mut self, ops: I) -> usize {
        let mut n = 0;
        for op in ops {
            self.apply(op);
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_matches_direct_calls() {
        let mut a: PhTree<u32, 2> = PhTree::new();
        let mut b: PhTree<u32, 2> = PhTree::new();
        let ops = vec![
            Op::Insert {
                key: [1, 2],
                value: 10,
            },
            Op::Insert {
                key: [3, 4],
                value: 20,
            },
            Op::Insert {
                key: [1, 2],
                value: 30,
            },
            Op::Remove { key: [3, 4] },
            Op::Remove { key: [9, 9] },
        ];
        for op in ops.clone() {
            let got = a.apply(op.clone());
            let want = match op {
                Op::Insert { key, value } => b.insert(key, value),
                Op::Remove { key } => b.remove(&key),
            };
            assert_eq!(got, want);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn replay_rebuilds_equal_tree() {
        let mut direct: PhTree<u64, 3> = PhTree::new();
        let mut ops = Vec::new();
        for i in 0..500u64 {
            let key = [i % 31, i % 17, i % 7];
            if i % 5 == 0 {
                ops.push(Op::Remove { key });
                direct.remove(&key);
            } else {
                ops.push(Op::Insert { key, value: i });
                direct.insert(key, i);
            }
        }
        let mut replayed: PhTree<u64, 3> = PhTree::new();
        assert_eq!(replayed.replay(ops), 500);
        replayed.check_invariants();
        assert_eq!(replayed, direct);
    }
}
