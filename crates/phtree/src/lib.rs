//! # phtree — the PATRICIA-hypercube-tree
//!
//! A from-scratch Rust implementation of the PH-tree, the
//! space-efficient multi-dimensional storage structure and index of
//!
//! > T. Zäschke, C. Zimmerli, M. C. Norrie: *The PH-Tree — A
//! > Space-Efficient Storage Structure and Multi-Dimensional Index*,
//! > SIGMOD 2014.
//!
//! The PH-tree is a quadtree-like trie over the bit representation of
//! `K`-dimensional integer keys that combines:
//!
//! * splitting in **all `K` dimensions** per node, with children located
//!   by a `K`-bit *hypercube address* (one array lookup instead of up to
//!   `k` binary-tree hops),
//! * PATRICIA-style **prefix sharing** (per-node infixes, per-entry
//!   postfixes), which bounds the tree depth by the bit width `w = 64`
//!   regardless of `K` and regardless of insertion order,
//! * per-node **bit-stream storage** of all infix/postfix data, and
//! * an adaptive **HC/LHC node representation** switching between a full
//!   `2^K` hypercube array and a sorted linear table by exact size.
//!
//! ## Quick start
//!
//! ```
//! use phtree::PhTreeF64;
//!
//! // A 3-D index over f64 coordinates.
//! let mut index: PhTreeF64<u32, 3> = PhTreeF64::new();
//! index.insert([0.1, 0.2, 0.3], 1);
//! index.insert([0.4, 0.5, 0.6], 2);
//! index.insert([-1.0, 0.0, 1.0], 3);
//!
//! assert_eq!(index.get(&[0.4, 0.5, 0.6]), Some(&2));
//!
//! // Window (range) query:
//! let mut hits: Vec<u32> = index
//!     .query(&[0.0, 0.0, 0.0], &[0.5, 0.5, 0.9])
//!     .map(|(_, &v)| v)
//!     .collect();
//! hits.sort();
//! assert_eq!(hits, vec![1, 2]);
//!
//! // Nearest neighbours:
//! let nn = index.knn(&[0.39, 0.5, 0.61], 1);
//! assert_eq!(*nn[0].1, 2);
//! ```
//!
//! For raw integer keys (or anything convertible to sortable `u64`s via
//! [`key`]), use [`PhTree`] directly.

#![warn(missing_docs)]

mod config;
pub mod dynamic;
mod float;
mod impls;
mod iter;
pub mod key;
mod knn;
mod node;
mod ops;
mod query;
pub mod raw;
pub mod stats;
pub mod telemetry;
mod tree;

pub use config::ReprMode;
pub use dynamic::PhTreeDyn;
pub use float::{PhTreeF64, QueryF64};
pub use iter::Iter;
pub use knn::{Distance, F64Euclidean, IntEuclidean, Neighbor};
pub use ops::{Op, ReplayStats};
pub use query::Query;
pub use stats::{TreeStats, ALLOC_OVERHEAD};
pub use tree::PhTree;

// Compile-time thread-safety guarantees. The trees hold no interior
// mutability or thread affinity, so shared references support
// concurrent readers (`&self` entry points: `get`, `query`, `knn`,
// `iter`, `root_raw`) and ownership can move across threads. Sharding
// layers rely on these bounds; this block makes a regression a compile
// error rather than a distant downstream breakage.
const _: () = {
    const fn send_sync<T: Send + Sync>() {}
    const fn send<T: Send>() {}
    send_sync::<PhTree<String, 3>>();
    send_sync::<PhTreeDyn<String>>();
    send_sync::<PhTreeF64<String, 3>>();
    // Borrowing iterators are Send + Sync when the element type is.
    send_sync::<Iter<'static, String, 3>>();
    send_sync::<Query<'static, String, 3>>();
    send::<Op<String, 3>>();
};
