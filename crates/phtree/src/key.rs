//! Order-preserving key encodings (paper Sect. 3.3).
//!
//! The PH-tree understands only bit strings, which it orders as unsigned
//! integers. Floating-point and signed-integer coordinates must therefore
//! be converted into `u64`s such that the unsigned order of the converted
//! values equals the natural order of the originals. This module provides
//! those conversions and their inverses.

/// Converts an IEEE-754 `f64` into a sortable `u64`.
///
/// This is the conversion function of Sect. 3.3: non-negative values map
/// to their raw bit pattern with the sign bit set cleared... specifically,
/// for `i1 = f64_to_key(f1)` and `i2 = f64_to_key(f2)`, `i1 > i2` holds if
/// and only if `f1 > f2` (for non-NaN inputs). `-0.0` is normalised to
/// `+0.0` before conversion, exactly as in the paper.
///
/// Unlike the paper's Java version (which compares as *signed* longs), we
/// compare keys as unsigned integers, so positive values additionally get
/// the sign bit set and negative values are fully inverted; the sortable
/// property is identical.
///
/// NaN inputs are accepted and map above all other values (quiet-NaN bit
/// patterns are larger than infinity's); ordering among NaNs is
/// unspecified but stable.
///
/// ```
/// use phtree::key::{f64_to_key, key_to_f64};
/// let vals = [-1.5e300, -2.0, -0.0, 0.0, 1e-30, 0.4, 0.5, f64::INFINITY];
/// let keys: Vec<u64> = vals.iter().map(|&v| f64_to_key(v)).collect();
/// let mut sorted = keys.clone();
/// sorted.sort();
/// assert_eq!(keys, sorted);
/// assert_eq!(key_to_f64(f64_to_key(0.4)), 0.4);
/// assert_eq!(key_to_f64(f64_to_key(-0.0)), 0.0); // -0.0 is eliminated
/// ```
#[inline]
pub fn f64_to_key(value: f64) -> u64 {
    let value = if value == 0.0 { 0.0 } else { value }; // -0.0 → +0.0
    let bits = value.to_bits();
    if bits >> 63 == 0 {
        // Non-negative: order of bit patterns already matches; offset into
        // the upper half so that negatives sort below.
        bits | (1 << 63)
    } else {
        // Negative: invert so that more-negative sorts lower.
        !bits
    }
}

/// Inverse of [`f64_to_key`].
#[inline]
pub fn key_to_f64(key: u64) -> f64 {
    if key >> 63 == 1 {
        f64::from_bits(key & !(1 << 63))
    } else {
        f64::from_bits(!key)
    }
}

/// Converts a signed 64-bit integer into a sortable `u64` (flip the sign
/// bit), preserving order.
///
/// ```
/// use phtree::key::{i64_to_key, key_to_i64};
/// assert!(i64_to_key(-5) < i64_to_key(3));
/// assert_eq!(key_to_i64(i64_to_key(-42)), -42);
/// ```
#[inline]
pub fn i64_to_key(value: i64) -> u64 {
    (value as u64) ^ (1 << 63)
}

/// Inverse of [`i64_to_key`].
#[inline]
pub fn key_to_i64(key: u64) -> i64 {
    (key ^ (1 << 63)) as i64
}

/// Converts an `f64` point to a PH-tree key, dimension-wise.
#[inline]
pub fn point_to_key<const K: usize>(p: &[f64; K]) -> [u64; K] {
    std::array::from_fn(|d| f64_to_key(p[d]))
}

/// Converts a PH-tree key back to an `f64` point, dimension-wise.
#[inline]
pub fn key_to_point<const K: usize>(k: &[u64; K]) -> [f64; K] {
    std::array::from_fn(|d| key_to_f64(k[d]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_normalised() {
        assert_eq!(f64_to_key(-0.0), f64_to_key(0.0));
        assert_eq!(key_to_f64(f64_to_key(-0.0)).to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn order_preserved_across_sign() {
        let vals = [
            f64::NEG_INFINITY,
            -1e300,
            -1.0,
            -1e-300,
            0.0,
            1e-300,
            0.0999,
            0.10001,
            0.4999,
            0.50001,
            1.0,
            1e300,
            f64::INFINITY,
        ];
        for w in vals.windows(2) {
            assert!(
                f64_to_key(w[0]) < f64_to_key(w[1]),
                "{} should sort below {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn roundtrip_non_nan() {
        for v in [-123.456, -0.5, 0.5, 42.0, 1e-30, -1e30, f64::MAX, f64::MIN] {
            assert_eq!(key_to_f64(f64_to_key(v)), v);
        }
    }

    /// Table 4 of the paper: the exponent changes between 0.49999… and
    /// 0.5, but not between 0.39999… and 0.4 — the cause of the
    /// CLUSTER0.5 space blow-up (Sect. 4.3.6).
    #[test]
    fn table4_exponent_boundary() {
        let exp = |v: f64| (v.to_bits() >> 52) & 0x7FF;
        assert_eq!(exp(0.39999), exp(0.40005));
        assert_ne!(exp(0.49999), exp(0.50001));
        // Same effect is visible in the converted keys: common prefix of
        // the 0.4-neighbourhood is much longer.
        let common_prefix = |a: u64, b: u64| (a ^ b).leading_zeros();
        let p4 = common_prefix(f64_to_key(0.39995), f64_to_key(0.40005));
        let p5 = common_prefix(f64_to_key(0.49995), f64_to_key(0.50005));
        assert_eq!(p4, 22, "0.4-cluster common prefix");
        assert_eq!(p5, 10, "0.5-cluster prefix collapses at the exponent");
    }

    /// The exact IEEE bit patterns listed in Table 4.
    #[test]
    fn table4_bit_patterns() {
        assert_eq!(0.39999f64.to_bits(), 4600877199177713619);
        assert_eq!(0.40000f64.to_bits(), 4600877379321698714);
        assert_eq!(0.49999f64.to_bits(), 4602678639028661817);
        assert_eq!(0.50000f64.to_bits(), 4602678819172646912);
    }

    #[test]
    fn i64_order_preserved() {
        let vals = [i64::MIN, -100, -1, 0, 1, 100, i64::MAX];
        for w in vals.windows(2) {
            assert!(i64_to_key(w[0]) < i64_to_key(w[1]));
        }
        for v in vals {
            assert_eq!(key_to_i64(i64_to_key(v)), v);
        }
    }

    #[test]
    fn point_conversions() {
        let p = [0.25, -4.5, 1e10];
        let k = point_to_key(&p);
        assert_eq!(key_to_point(&k), p);
    }

    #[test]
    fn nan_sorts_at_top() {
        assert!(f64_to_key(f64::NAN) > f64_to_key(f64::INFINITY));
    }
}
