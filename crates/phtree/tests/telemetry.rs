//! Exercises the `metrics`-feature telemetry sink: per-op node-visit
//! reporting and HC<->LHC switch notifications.
//!
//! The sink is process-global (first install wins), so everything runs
//! in one test function.
#![cfg(feature = "metrics")]

use std::sync::atomic::{AtomicU64, Ordering};

use phtree::telemetry::{self, TreeOp, TreeSink};
use phtree::{PhTree, ReprMode};

#[derive(Default)]
struct Collect {
    gets: AtomicU64,
    get_nodes: AtomicU64,
    inserts: AtomicU64,
    insert_nodes: AtomicU64,
    removes: AtomicU64,
    queries: AtomicU64,
    query_nodes: AtomicU64,
    to_hc: AtomicU64,
    to_lhc: AtomicU64,
}

impl TreeSink for Collect {
    fn op(&self, op: TreeOp, nodes_visited: u32) {
        let (count, nodes) = match op {
            TreeOp::Get => (&self.gets, Some(&self.get_nodes)),
            TreeOp::Insert => (&self.inserts, Some(&self.insert_nodes)),
            TreeOp::Remove => (&self.removes, None),
            TreeOp::Query => (&self.queries, Some(&self.query_nodes)),
        };
        count.fetch_add(1, Ordering::Relaxed);
        if let Some(n) = nodes {
            n.fetch_add(nodes_visited as u64, Ordering::Relaxed);
        }
    }

    fn repr_switch(&self, to_hc: bool) {
        if to_hc {
            self.to_hc.fetch_add(1, Ordering::Relaxed);
        } else {
            self.to_lhc.fetch_add(1, Ordering::Relaxed);
        }
    }
}

static SINK: Collect = Collect {
    gets: AtomicU64::new(0),
    get_nodes: AtomicU64::new(0),
    inserts: AtomicU64::new(0),
    insert_nodes: AtomicU64::new(0),
    removes: AtomicU64::new(0),
    queries: AtomicU64::new(0),
    query_nodes: AtomicU64::new(0),
    to_hc: AtomicU64::new(0),
    to_lhc: AtomicU64::new(0),
};

#[test]
fn sink_observes_ops_visits_and_repr_switches() {
    assert!(!telemetry::sink_installed());
    assert!(telemetry::set_sink(&SINK));
    assert!(telemetry::sink_installed());
    // First install wins; a second install is rejected.
    static OTHER: Collect = Collect {
        gets: AtomicU64::new(0),
        get_nodes: AtomicU64::new(0),
        inserts: AtomicU64::new(0),
        insert_nodes: AtomicU64::new(0),
        removes: AtomicU64::new(0),
        queries: AtomicU64::new(0),
        query_nodes: AtomicU64::new(0),
        to_hc: AtomicU64::new(0),
        to_lhc: AtomicU64::new(0),
    };
    assert!(!telemetry::set_sink(&OTHER));

    // A dense 16x16 2-D grid forces HC nodes under adaptive mode, so
    // building it must report LHC->HC switches.
    let mut t: PhTree<u64, 2> = PhTree::with_mode(ReprMode::Adaptive);
    for x in 0..16u64 {
        for y in 0..16u64 {
            t.insert([x, y], x * 16 + y);
        }
    }
    assert_eq!(SINK.inserts.load(Ordering::Relaxed), 256);
    // Every insert touches at least the root.
    assert!(SINK.insert_nodes.load(Ordering::Relaxed) >= 256);
    assert!(t.stats().hc_nodes > 0, "grid must produce HC nodes");
    assert!(SINK.to_hc.load(Ordering::Relaxed) > 0);

    // Point queries: hits and misses both report, with >= 1 node each.
    assert_eq!(t.get(&[3, 5]), Some(&(3 * 16 + 5)));
    assert_eq!(t.get(&[99, 99]), None);
    assert_eq!(SINK.gets.load(Ordering::Relaxed), 2);
    assert!(SINK.get_nodes.load(Ordering::Relaxed) >= 2);

    // Window query reports once, on iterator drop, counting all nodes
    // pushed during the traversal.
    let hits = t.query(&[2, 3], &[4, 5]).count();
    assert_eq!(hits, 3 * 3);
    assert_eq!(SINK.queries.load(Ordering::Relaxed), 1);
    assert!(SINK.query_nodes.load(Ordering::Relaxed) >= 1);

    // Draining the tree merges nodes back below the HC threshold,
    // reporting HC->LHC switches on the way down.
    for x in 0..16u64 {
        for y in 0..16u64 {
            assert!(t.remove(&[x, y]).is_some());
        }
    }
    assert_eq!(SINK.removes.load(Ordering::Relaxed), 256);
    assert!(SINK.to_lhc.load(Ordering::Relaxed) > 0);
}
