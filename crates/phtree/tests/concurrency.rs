//! Concurrent read access (paper Sect. 5: the ≤ 2-nodes-per-update
//! property makes the PH-tree suitable for concurrency; here we verify
//! the read side — a built tree is safely shared across threads).

use phtree::{PhTree, PhTreeDyn, PhTreeF64};

#[test]
fn tree_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PhTree<u64, 3>>();
    assert_send_sync::<PhTreeF64<String, 2>>();
    assert_send_sync::<PhTreeDyn<u64>>();
}

#[test]
fn dyn_tree_parallel_readers() {
    let mut tree: PhTreeDyn<u64> = PhTreeDyn::new(3);
    for i in 0..20_000u64 {
        tree.insert(&[i % 41, (i / 41) % 37, i / (41 * 37)], i);
    }
    let expected_len = tree.len();
    let expected_window = tree.query_count(&[5, 5, 0], &[30, 30, 20]);
    let tree = &tree;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                s.spawn(move || {
                    let mut count = 0usize;
                    tree.for_each(&mut |_k, _v| count += 1);
                    assert_eq!(count, expected_len, "thread {t} full scan");
                    tree.query_count(&[5, 5, 0], &[30, 30, 20])
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), expected_window);
        }
    });
}

#[test]
fn parallel_queries_see_consistent_data() {
    let mut tree: PhTree<u64, 2> = PhTree::new();
    for i in 0..50_000u64 {
        tree.insert([i % 251, i / 251], i);
    }
    let expected_sum: u64 = tree.iter().map(|(_, &v)| v).sum();
    let expected_len = tree.len();
    let tree = &tree;
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..8 {
            handles.push(s.spawn(move || {
                // Each thread mixes point queries, window queries and kNN.
                let mut sum = 0u64;
                let mut count = 0usize;
                for (k, &v) in tree.iter() {
                    sum += v;
                    count += 1;
                    let _ = k;
                }
                assert_eq!(count, expected_len, "thread {t} iteration");
                let w = tree.query(&[10, 10], &[100, 100]).count();
                let nn = tree.knn(&[125, 99], 3);
                assert_eq!(nn.len(), 3);
                (sum, w)
            }));
        }
        let results: Vec<(u64, usize)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for (sum, w) in &results {
            assert_eq!(*sum, expected_sum);
            assert_eq!(*w, results[0].1);
        }
    });
    let _ = expected_sum;
}

#[test]
fn tree_can_be_moved_to_another_thread() {
    let mut tree: PhTreeF64<u32, 3> = PhTreeF64::new();
    for p in datasets_like(1000) {
        tree.insert(p, 1);
    }
    let handle = std::thread::spawn(move || {
        let n = tree.len();
        let hits = tree.query(&[0.0; 3], &[0.5; 3]).count();
        (n, hits)
    });
    let (n, hits) = handle.join().unwrap();
    assert!(n > 0);
    assert!(hits <= n);
}

/// Small deterministic point cloud without pulling in the datasets crate
/// (phtree has no dev-dependency on it).
fn datasets_like(n: usize) -> Vec<[f64; 3]> {
    let mut x = 123u64;
    (0..n)
        .map(|_| {
            let mut next = || {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 11) as f64 / (1u64 << 53) as f64
            };
            [next(), next(), next()]
        })
        .collect()
}
