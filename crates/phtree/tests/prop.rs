//! Property-based tests for the PH-tree, checked against `BTreeMap` /
//! brute-force models.

use phtree::key::{f64_to_key, key_to_f64};
use phtree::{PhTree, PhTreeF64, ReprMode};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Clone, Debug)]
enum Op {
    Insert([u64; 3], u32),
    Remove([u64; 3]),
    Get([u64; 3]),
}

/// Keys drawn from a small coordinate universe so that collisions,
/// splits and merges all occur frequently.
fn key_strategy() -> impl Strategy<Value = [u64; 3]> {
    prop_oneof![
        // Dense small coordinates.
        [0u64..16, 0u64..16, 0u64..16],
        // High-bit patterns.
        [0u64..4, 0u64..4, 0u64..4].prop_map(|k| k.map(|v| v << 62)),
        // Arbitrary values.
        [any::<u64>(), any::<u64>(), any::<u64>()],
        // Power-of-two style values (the space worst case).
        [0u32..64, 0u32..64, 0u32..64].prop_map(|k| k.map(|b| 1u64 << b)),
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (key_strategy(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k, v)),
        2 => key_strategy().prop_map(Op::Remove),
        1 => key_strategy().prop_map(Op::Get),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Random insert/remove/get sequences match a BTreeMap model, in all
    /// three node representation modes.
    #[test]
    fn tree_matches_btreemap_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        for mode in [ReprMode::Adaptive, ReprMode::ForceLhc, ReprMode::ForceHc] {
            let mut tree: PhTree<u32, 3> = PhTree::with_mode(mode);
            let mut model: BTreeMap<[u64; 3], u32> = BTreeMap::new();
            for op in &ops {
                match *op {
                    Op::Insert(k, v) => {
                        prop_assert_eq!(tree.insert(k, v), model.insert(k, v), "insert {:?}", k);
                    }
                    Op::Remove(k) => {
                        prop_assert_eq!(tree.remove(&k), model.remove(&k), "remove {:?}", k);
                    }
                    Op::Get(k) => {
                        prop_assert_eq!(tree.get(&k), model.get(&k), "get {:?}", k);
                    }
                }
                prop_assert_eq!(tree.len(), model.len());
            }
            tree.check_invariants();
            // Full scan equality.
            let mut got: Vec<([u64; 3], u32)> = tree.iter().map(|(k, &v)| (k, v)).collect();
            got.sort();
            let want: Vec<([u64; 3], u32)> = model.into_iter().collect();
            prop_assert_eq!(got, want);
        }
    }

    /// Window queries return exactly the brute-force filtered set.
    #[test]
    fn window_query_matches_filter(
        keys in proptest::collection::vec(key_strategy(), 1..200),
        qa in key_strategy(),
        qb in key_strategy(),
    ) {
        let mut tree: PhTree<(), 3> = PhTree::new();
        let mut set = std::collections::BTreeSet::new();
        for k in keys {
            tree.insert(k, ());
            set.insert(k);
        }
        let min: [u64; 3] = std::array::from_fn(|d| qa[d].min(qb[d]));
        let max: [u64; 3] = std::array::from_fn(|d| qa[d].max(qb[d]));
        let mut got: Vec<[u64; 3]> = tree.query(&min, &max).map(|(k, _)| k).collect();
        got.sort();
        // No duplicates from the iterator.
        let dedup_len = { let mut g = got.clone(); g.dedup(); g.len() };
        prop_assert_eq!(dedup_len, got.len());
        let want: Vec<[u64; 3]> = set
            .iter()
            .filter(|k| (0..3).all(|d| min[d] <= k[d] && k[d] <= max[d]))
            .copied()
            .collect();
        prop_assert_eq!(got, want);
    }

    /// The f64 conversion is order-preserving in both directions.
    #[test]
    fn f64_key_order_preserved(a in any::<f64>(), b in any::<f64>()) {
        prop_assume!(!a.is_nan() && !b.is_nan());
        let (ka, kb) = (f64_to_key(a), f64_to_key(b));
        match a.partial_cmp(&b).unwrap() {
            std::cmp::Ordering::Less => prop_assert!(ka < kb),
            std::cmp::Ordering::Greater => prop_assert!(ka > kb),
            std::cmp::Ordering::Equal => prop_assert_eq!(ka, kb),
        }
        if a != 0.0 {
            prop_assert_eq!(key_to_f64(ka), a);
        }
    }

    /// kNN on f64 points agrees with a brute-force scan.
    #[test]
    fn knn_matches_brute_force(
        pts in proptest::collection::vec([-100.0f64..100.0, -100.0f64..100.0], 1..80),
        center in [-100.0f64..100.0, -100.0f64..100.0],
        n in 1usize..10,
    ) {
        let mut tree: PhTreeF64<usize, 2> = PhTreeF64::new();
        let mut uniq = Vec::new();
        for (i, p) in pts.iter().enumerate() {
            if tree.insert(*p, i).is_none() {
                uniq.push(*p);
            }
        }
        let got = tree.knn(&center, n);
        let mut want: Vec<f64> = uniq
            .iter()
            .map(|p| ((p[0] - center[0]).powi(2) + (p[1] - center[1]).powi(2)).sqrt())
            .collect();
        want.sort_by(f64::total_cmp);
        want.truncate(n);
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g.2 - w).abs() < 1e-9, "dist {} vs {}", g.2, w);
        }
    }

    /// Insert order never changes the structure: permutations of the
    /// same key set yield byte-identical statistics (paper Sect. 3.6:
    /// "the structure is determined solely by the data").
    #[test]
    fn structure_is_insert_order_independent(
        keys in proptest::collection::btree_set(key_strategy(), 2..60),
        seed in any::<u64>(),
    ) {
        let keys: Vec<[u64; 3]> = keys.iter().copied().collect();
        let mut t1: PhTree<(), 3> = PhTree::new();
        for &k in &keys {
            t1.insert(k, ());
        }
        // Shuffle deterministically.
        let mut shuffled = keys.clone();
        let mut x = seed | 1;
        for i in (1..shuffled.len()).rev() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            shuffled.swap(i, (x as usize) % (i + 1));
        }
        let mut t2: PhTree<(), 3> = PhTree::new();
        for &k in &shuffled {
            t2.insert(k, ());
        }
        let (s1, s2) = (t1.stats(), t2.stats());
        prop_assert_eq!(s1.nodes, s2.nodes);
        prop_assert_eq!(s1.max_depth, s2.max_depth);
        prop_assert_eq!(s1.hc_nodes, s2.hc_nodes);
        prop_assert_eq!(s1.entries, s2.entries);
    }

    /// Deleting entries restores the exact structure the remaining keys
    /// would build from scratch.
    #[test]
    fn deletion_restores_canonical_structure(
        keys in proptest::collection::btree_set(key_strategy(), 4..60),
        remove_mask in any::<u64>(),
    ) {
        let keys: Vec<[u64; 3]> = keys.iter().copied().collect();
        let mut full: PhTree<(), 3> = PhTree::new();
        for &k in &keys {
            full.insert(k, ());
        }
        let mut kept = Vec::new();
        for (i, &k) in keys.iter().enumerate() {
            if remove_mask >> (i % 64) & 1 == 1 {
                full.remove(&k);
            } else {
                kept.push(k);
            }
        }
        full.check_invariants();
        let mut fresh: PhTree<(), 3> = PhTree::new();
        for &k in &kept {
            fresh.insert(k, ());
        }
        let (s1, s2) = (full.stats(), fresh.stats());
        prop_assert_eq!(s1.nodes, s2.nodes);
        prop_assert_eq!(s1.entries, s2.entries);
        prop_assert_eq!(s1.max_depth, s2.max_depth);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Approximate window queries return a superset of the exact result,
    /// and every extra key is within `2^slack − 1` of the window.
    #[test]
    fn approx_query_is_bounded_superset(
        keys in proptest::collection::vec(key_strategy(), 1..150),
        qa in key_strategy(),
        qb in key_strategy(),
        slack in 0u32..12,
    ) {
        let mut tree: PhTree<(), 3> = PhTree::new();
        for k in keys {
            tree.insert(k, ());
        }
        let min: [u64; 3] = std::array::from_fn(|d| qa[d].min(qb[d]));
        let max: [u64; 3] = std::array::from_fn(|d| qa[d].max(qb[d]));
        let exact: std::collections::BTreeSet<[u64; 3]> =
            tree.query(&min, &max).map(|(k, _)| k).collect();
        let approx: std::collections::BTreeSet<[u64; 3]> =
            tree.query_approx(&min, &max, slack).map(|(k, _)| k).collect();
        prop_assert!(approx.is_superset(&exact));
        let eps = if slack == 0 { 0 } else { (1u64 << slack) - 1 };
        for k in &approx {
            for d in 0..3 {
                prop_assert!(
                    k[d] >= min[d].saturating_sub(eps) && k[d] <= max[d].saturating_add(eps),
                    "key {:?} beyond slack {} of [{:?}, {:?}]", k, slack, min, max
                );
            }
        }
        // slack = 0 must be exact.
        let zero: std::collections::BTreeSet<[u64; 3]> =
            tree.query_approx(&min, &max, 0).map(|(k, _)| k).collect();
        prop_assert_eq!(zero, exact);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Bulk loading is indistinguishable from sequential insertion:
    /// byte-identical structure (the canonical-form guarantee makes the
    /// whole tree a pure function of its contents), identical iteration
    /// order and identical window-query order — in every representation
    /// mode, with duplicate keys (last write wins) and empty/singleton
    /// inputs included in the generated cases.
    #[test]
    fn bulk_load_equals_sequential_inserts(
        items in proptest::collection::vec((key_strategy(), any::<u32>()), 0..150),
    ) {
        for mode in [ReprMode::Adaptive, ReprMode::ForceLhc, ReprMode::ForceHc] {
            let bulk = PhTree::bulk_load_with_mode(items.clone(), mode);
            bulk.check_invariants();
            let mut seq: PhTree<u32, 3> = PhTree::with_mode(mode);
            for &(k, v) in &items {
                seq.insert(k, v);
            }
            seq.shrink_to_fit();
            prop_assert_eq!(bulk.len(), seq.len());
            // Byte-identical structure once growth slack is released.
            prop_assert_eq!(bulk.stats(), seq.stats());
            let a: Vec<_> = bulk.iter().map(|(k, &v)| (k, v)).collect();
            let b: Vec<_> = seq.iter().map(|(k, &v)| (k, v)).collect();
            prop_assert_eq!(a, b);
            let (min, max) = ([1u64, 0, 2], [1u64 << 62, 15, 1 << 63]);
            let qa: Vec<_> = bulk.query(&min, &max).map(|(k, _)| k).collect();
            let qb: Vec<_> = seq.query(&min, &max).map(|(k, _)| k).collect();
            prop_assert_eq!(qa, qb);
        }
        // The runtime-k tree gets the same guarantee.
        let dyn_items: Vec<(Vec<u64>, u32)> =
            items.iter().map(|&(k, v)| (k.to_vec(), v)).collect();
        let dbulk: phtree::PhTreeDyn<u32> = phtree::PhTreeDyn::bulk_load(3, dyn_items.clone());
        dbulk.check_invariants();
        let mut dseq: phtree::PhTreeDyn<u32> = phtree::PhTreeDyn::new(3);
        for (k, v) in &dyn_items {
            dseq.insert(k, *v);
        }
        dseq.shrink_to_fit();
        prop_assert_eq!(dbulk.len(), dseq.len());
        prop_assert_eq!(dbulk.stats(), dseq.stats());
        let mut pa = Vec::new();
        dbulk.for_each(&mut |k, v| pa.push((k.to_vec(), *v)));
        let mut pb = Vec::new();
        dseq.for_each(&mut |k, v| pb.push((k.to_vec(), *v)));
        prop_assert_eq!(pa, pb);
    }

    /// The dynamic (runtime-k) tree and the const-generic tree run the
    /// same canonical algorithm: identical data must produce identical
    /// structure, contents and statistics — under inserts AND removals.
    #[test]
    fn dynamic_tree_equals_static_tree(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut st: PhTree<u32, 3> = PhTree::new();
        let mut dy: phtree::PhTreeDyn<u32> = phtree::PhTreeDyn::new(3);
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    prop_assert_eq!(st.insert(k, v), dy.insert(&k, v));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(st.remove(&k), dy.remove(&k));
                }
                Op::Get(k) => {
                    prop_assert_eq!(st.get(&k), dy.get(&k));
                }
            }
        }
        st.check_invariants();
        dy.check_invariants();
        prop_assert_eq!(st.len(), dy.len());
        // Canonical structure: identical node counts, depths and reprs.
        let (a, b) = (st.stats(), dy.stats());
        prop_assert_eq!(a.nodes, b.nodes);
        prop_assert_eq!(a.hc_nodes, b.hc_nodes);
        prop_assert_eq!(a.max_depth, b.max_depth);
        prop_assert_eq!(a.entries, b.entries);
        prop_assert_eq!(a.bit_bytes, b.bit_bytes);
        // Identical window query results.
        let (min, max) = ([2u64, 0, 1], [14u64, 12, 30]);
        let mut want: Vec<[u64; 3]> = st.query(&min, &max).map(|(k, _)| k).collect();
        want.sort();
        let mut got: Vec<[u64; 3]> = Vec::new();
        dy.query_visit(&min, &max, &mut |k, _| got.push([k[0], k[1], k[2]]));
        got.sort();
        prop_assert_eq!(got, want);
    }
}
