//! Exact-heap verification of the structural space accounting.
//!
//! The paper validates its calculated node sizes against JVM heap
//! measurements (Sect. 4.3.5, within 5 %). We can do better: with a
//! counting global allocator, every heap byte a tree owns is observable
//! as the fall in live bytes when the tree is dropped, and the stats
//! model must match it *exactly* — including capacity slack from
//! amortised vector growth, and including its absence in bulk-loaded
//! or shrunk trees.
//!
//! Everything lives in ONE `#[test]`: the counters are process-global
//! and libtest runs separate tests on separate threads.

use measure::alloc_track::{snapshot, CountingAlloc};
use phtree::{PhTree, PhTreeDyn, ALLOC_OVERHEAD};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn dataset(n: u64) -> Vec<([u64; 3], u64)> {
    let mut x = 7u64;
    (0..n)
        .map(|i| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ([x % 4096, (x >> 20) % 4096, (x >> 40) % 4096], i)
        })
        .collect()
}

/// Heap bytes and blocks owned by `t`, measured as the live-counter
/// fall across dropping it.
fn measured_heap<T>(t: T) -> (usize, usize) {
    let before = snapshot();
    drop(t);
    let after = snapshot();
    (
        before.live_bytes - after.live_bytes,
        before.live_blocks - after.live_blocks,
    )
}

fn assert_stats_exact(name: &str, stats: phtree::TreeStats, bytes: usize, blocks: usize) {
    assert_eq!(
        stats.allocations, blocks,
        "{name}: allocation count vs live blocks"
    );
    assert_eq!(
        stats.total_bytes - ALLOC_OVERHEAD * stats.allocations,
        bytes,
        "{name}: accounted bytes vs measured heap bytes"
    );
}

#[test]
fn stats_match_measured_heap_exactly() {
    let items = dataset(5000);

    // Bulk-loaded: exact-size construction, zero slack by design.
    let bulk = PhTree::bulk_load(items.clone());
    let bulk_stats = bulk.stats();
    let (bytes, blocks) = measured_heap(bulk);
    assert_stats_exact("bulk", bulk_stats, bytes, blocks);

    // Sequentially grown: capacity slack is real heap and must be
    // charged, byte for byte.
    let mut seq: PhTree<u64, 3> = PhTree::new();
    for &(k, v) in &items {
        seq.insert(k, v);
    }
    let seq_stats = seq.stats();
    let (bytes, blocks) = measured_heap(seq);
    assert_stats_exact("sequential", seq_stats, bytes, blocks);

    // Shrunk: same contents, slack released; bulk and shrunk-sequential
    // agree exactly (the structure is canonical).
    let mut shrunk: PhTree<u64, 3> = PhTree::new();
    for &(k, v) in &items {
        shrunk.insert(k, v);
    }
    shrunk.shrink_to_fit();
    let shrunk_stats = shrunk.stats();
    assert_eq!(shrunk_stats, bulk_stats, "bulk output carries zero slack");
    let (bytes, blocks) = measured_heap(shrunk);
    assert_stats_exact("shrunk", shrunk_stats, bytes, blocks);
    assert!(shrunk_stats.total_bytes <= seq_stats.total_bytes);

    // Runtime-k tree, bulk and shrunk-sequential alike.
    let dyn_items: Vec<(Vec<u64>, u64)> = items.iter().map(|&(k, v)| (k.to_vec(), v)).collect();
    let dbulk: PhTreeDyn<u64> = PhTreeDyn::bulk_load(3, dyn_items.clone());
    let dbulk_stats = dbulk.stats();
    let (bytes, blocks) = measured_heap(dbulk);
    assert_stats_exact("dyn bulk", dbulk_stats, bytes, blocks);
    let mut dseq: PhTreeDyn<u64> = PhTreeDyn::new(3);
    for (k, v) in &dyn_items {
        dseq.insert(k, *v);
    }
    dseq.shrink_to_fit();
    assert_eq!(dseq.stats(), dbulk_stats);
    let (bytes, blocks) = measured_heap(dseq);
    assert_stats_exact("dyn shrunk", dbulk_stats, bytes, blocks);
}
