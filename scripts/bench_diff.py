#!/usr/bin/env python3
"""Compare a fresh bench run against the committed perf baseline.

Both inputs are the flat JSON files written by scripts/bench_baseline.sh
({"bench_name": microseconds, ...}). A bench regresses when its new
metric exceeds the baseline by more than --threshold percent.

Exit status: 0 unless --hard is given and a regression (or a missing
bench) was found. CI runs this warn-only first; --hard is for local
gating before committing a perf-sensitive change.
"""

import argparse
import json
import sys


def main() -> int:
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("baseline", help="committed baseline JSON")
    p.add_argument("new", help="freshly measured JSON")
    p.add_argument(
        "--threshold",
        type=float,
        default=15.0,
        help="regression threshold in percent (default 15)",
    )
    p.add_argument(
        "--hard",
        action="store_true",
        help="exit non-zero on regression instead of warning",
    )
    args = p.parse_args()

    with open(args.baseline) as f:
        base = json.load(f)
    with open(args.new) as f:
        new = json.load(f)

    if not isinstance(base, dict) or not isinstance(new, dict):
        print("error: inputs must be flat JSON objects", file=sys.stderr)
        return 2

    regressions = []
    missing = []
    width = max((len(k) for k in base), default=10)
    print(f"{'bench':<{width}}  {'base µs':>10}  {'new µs':>10}  {'delta':>8}")
    for name in sorted(base):
        b = float(base[name])
        if name not in new:
            missing.append(name)
            print(f"{name:<{width}}  {b:>10.4f}  {'MISSING':>10}  {'-':>8}")
            continue
        n = float(new[name])
        delta = (n - b) / b * 100.0 if b > 0 else 0.0
        flag = ""
        if delta > args.threshold:
            regressions.append((name, delta))
            flag = "  << REGRESSION"
        print(f"{name:<{width}}  {b:>10.4f}  {n:>10.4f}  {delta:>+7.1f}%{flag}")
    for name in sorted(set(new) - set(base)):
        print(f"{name:<{width}}  {'(new)':>10}  {float(new[name]):>10.4f}  {'-':>8}")

    if regressions:
        print(
            f"\n{len(regressions)} bench(es) regressed more than "
            f"{args.threshold:.0f}% vs {args.baseline}:"
        )
        for name, delta in regressions:
            print(f"  {name}: +{delta:.1f}%")
    if missing:
        print(f"\n{len(missing)} baseline bench(es) missing from the new run")
    if not regressions and not missing:
        print("\nno regressions above threshold")

    if args.hard and (regressions or missing):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
