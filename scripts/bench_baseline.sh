#!/usr/bin/env bash
# Perf-regression baseline: runs the fig7/fig8/fig9/fig_load bins
# PH-only on the CUBE dataset at K in {3, 8, 20}, plus fig_pack once
# (K=8 only — the packed-artifact reference point), and writes one flat
# JSON of µs metrics ({"fig8_point_query_cube_k8": 1.23, ...}).
# fig_load and fig_pack also hard-assert their own acceptance floors
# (bulk ≥2× faster than sequential at K=8, O(1) allocations per
# bulk-loaded entry; packed open ≥10× faster than WAL replay, packed
# bytes/entry ≤ live heap bytes/entry, zero allocs per packed read).
#
# Usage:  scripts/bench_baseline.sh [output.json]
#   QUICK=false scripts/bench_baseline.sh      # full-size run (default true)
#   SCALE=0.05  scripts/bench_baseline.sh      # override the entry count
#   FEATURES=metrics scripts/bench_baseline.sh # measure an instrumented build
#   SINK=true FEATURES=metrics scripts/bench_baseline.sh
#                                              # ... with a live counting sink
#
# The committed baseline lives at BENCH_phtree.json; CI regenerates a
# fresh one in --quick mode and diffs it via scripts/bench_diff.py.
# FEATURES=metrics builds the telemetry-enabled binaries (no sink
# installed), which is how the disabled-path overhead contract in
# DESIGN.md §13 is checked.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_phtree.json}"
QUICK="${QUICK:-true}"
SEED="${SEED:-42}"
SCALE="${SCALE:-}"
FEATURES="${FEATURES:-}"
SINK="${SINK:-}"

if [ -n "$FEATURES" ]; then
  cargo build --release -p ph-bench --features "$FEATURES" >/dev/null
else
  cargo build --release -p ph-bench >/dev/null
fi

EXTRA=()
if [ -n "$SCALE" ]; then
  EXTRA+=(--scale "$SCALE")
fi
if [ -n "$SINK" ]; then
  EXTRA+=(--sink true)
fi

rm -f "$OUT"
for K in 3 8 20; do
  for BIN in fig7_insert fig8_point_query fig9_range_query fig_load; do
    "target/release/$BIN" --k "$K" --quick "$QUICK" --seed "$SEED" \
      --json "$OUT" "${EXTRA[@]+"${EXTRA[@]}"}"
  done
done
# fig_pack is K=8-only (the issue pins its acceptance claims there), so
# it runs once outside the K sweep.
"target/release/fig_pack" --quick "$QUICK" --seed "$SEED" \
  --json "$OUT" "${EXTRA[@]+"${EXTRA[@]}"}"
echo "baseline -> $OUT"
