#!/usr/bin/env bash
# Regenerates every table and figure of the paper. Pass a scale factor
# (default 0.1 = one tenth of the paper's entry counts).
set -u
SCALE="${1:-0.1}"
SEED="${2:-42}"
cd "$(dirname "$0")/.."
mkdir -p results
cargo build --release -p ph-bench >/dev/null

run() {
  local name="$1"; shift
  echo "=== $name $* (scale $SCALE)"
  "target/release/$name" --scale "$SCALE" --seed "$SEED" "$@" 2>&1
  echo
}

{
  run fig7_insert --dataset tiger
  run fig7_insert --dataset cube
  run fig7_insert --dataset cluster
  run fig8_point_query --dataset tiger
  run fig8_point_query --dataset cube
  run fig8_point_query --dataset cluster
  run fig9_range_query --dataset tiger
  run fig9_range_query --dataset cube
  run fig9_range_query --dataset cluster
  run table1_space
  run table2_cluster_space
  run table3_nodes
  run fig10_space_vs_k
  run fig11_insert_vs_k
  run fig12_insert_vs_k_cube
  run fig13_query_vs_k --part a
  run fig13_query_vs_k --part b
  run fig13_query_vs_k --part c
  run fig14_space_vs_k_cluster
  run fig15_space_vs_k_cube
  run unload --dataset cube
  run unload --dataset cluster
  run ablation_hclhc
} | tee "results/run_all_scale${SCALE}.txt"
echo "done -> results/run_all_scale${SCALE}.txt"
